#include "analysis/absint.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <functional>
#include <sstream>

namespace sbd::analysis {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
} // namespace

// ---------------------------------------------------------------------------
// Interval domain
// ---------------------------------------------------------------------------

bool Interval::contains(double v) const {
    if (std::isnan(v)) return nan;
    return !empty_real() && lo <= v && v <= hi;
}

std::string Interval::str_or(const char* if_bottom) const {
    if (is_bottom()) return if_bottom;
    return analysis::to_string(*this);
}

std::string to_string(const Interval& iv) {
    if (iv.empty_real()) return iv.nan ? "NaN" : "(bottom)";
    char buf[96];
    if (iv.lo == iv.hi) std::snprintf(buf, sizeof buf, "[%.6g]", iv.lo);
    else std::snprintf(buf, sizeof buf, "[%.6g, %.6g]", iv.lo, iv.hi);
    return iv.nan ? std::string(buf) + " or NaN" : std::string(buf);
}

Interval iv_join(const Interval& a, const Interval& b) {
    Interval r;
    r.nan = a.nan || b.nan;
    if (a.empty_real()) { r.lo = b.lo; r.hi = b.hi; }
    else if (b.empty_real()) { r.lo = a.lo; r.hi = a.hi; }
    else { r.lo = std::min(a.lo, b.lo); r.hi = std::max(a.hi, b.hi); }
    return r;
}

Interval iv_add(const Interval& a, const Interval& b) {
    Interval r = Interval::bottom();
    r.nan = a.nan || b.nan;
    if (a.empty_real() || b.empty_real()) return r;
    // inf + (-inf) is attainable iff the operands can take opposite
    // infinities; the concrete result is then NaN.
    if ((a.lo == -kInf && b.hi == kInf) || (a.hi == kInf && b.lo == -kInf)) r.nan = true;
    r.lo = (a.lo == -kInf || b.lo == -kInf) ? -kInf : a.lo + b.lo;
    r.hi = (a.hi == kInf || b.hi == kInf) ? kInf : a.hi + b.hi;
    if (r.lo > r.hi) { r.lo = -kInf; r.hi = kInf; } // mixed-inf corner; stay sound
    return r;
}

Interval iv_neg(const Interval& a) {
    Interval r = a;
    if (a.empty_real()) return r;
    r.lo = -a.hi;
    r.hi = -a.lo;
    return r;
}

Interval iv_sub(const Interval& a, const Interval& b) { return iv_add(a, iv_neg(b)); }

Interval iv_mul(const Interval& a, const Interval& b) {
    Interval r = Interval::bottom();
    r.nan = a.nan || b.nan;
    if (a.empty_real() || b.empty_real()) return r;
    bool indet = false;
    double lo = kInf, hi = -kInf;
    const double as[2] = {a.lo, a.hi};
    const double bs[2] = {b.lo, b.hi};
    for (const double x : as) {
        for (const double y : bs) {
            if ((x == 0.0 && std::isinf(y)) || (std::isinf(x) && y == 0.0)) {
                indet = true; // 0 * inf corner: concrete NaN
                continue;
            }
            const double p = x * y;
            lo = std::min(lo, p);
            hi = std::max(hi, p);
        }
    }
    // A zero factor against a finite co-factor yields 0 even when every
    // involved corner is an indeterminate form (e.g. [0,0] * [-inf,inf]).
    const auto has_finite = [](const Interval& v) {
        return std::isfinite(v.lo) || std::isfinite(v.hi) || (v.lo < 0.0 && v.hi > 0.0);
    };
    if ((a.contains(0.0) && has_finite(b)) || (b.contains(0.0) && has_finite(a))) {
        lo = std::min(lo, 0.0);
        hi = std::max(hi, 0.0);
    }
    if (indet) r.nan = true;
    if (lo <= hi) { r.lo = lo; r.hi = hi; }
    return r;
}

Interval iv_abs(const Interval& a) {
    Interval r = a;
    if (a.empty_real()) return r;
    if (a.lo >= 0.0) return r;
    if (a.hi <= 0.0) { r.lo = -a.hi; r.hi = -a.lo; return r; }
    r.lo = 0.0;
    r.hi = std::max(-a.lo, a.hi);
    return r;
}

namespace {
// std::min/std::max(x, y) return x when the comparison with a NaN operand
// is false, so a NaN co-operand lets the other operand's reals through.
Interval minmax(const Interval& a, const Interval& b, bool is_min) {
    Interval r = Interval::bottom();
    r.nan = a.nan || b.nan;
    if (!a.empty_real() && !b.empty_real()) {
        r.lo = is_min ? std::min(a.lo, b.lo) : std::max(a.lo, b.lo);
        r.hi = is_min ? std::min(a.hi, b.hi) : std::max(a.hi, b.hi);
    }
    if (b.nan && !a.empty_real()) r = iv_join(r, Interval{a.lo, a.hi, r.nan});
    if (a.nan && !b.empty_real()) r = iv_join(r, Interval{b.lo, b.hi, r.nan});
    return r;
}
} // namespace

Interval iv_min(const Interval& a, const Interval& b) { return minmax(a, b, true); }
Interval iv_max(const Interval& a, const Interval& b) { return minmax(a, b, false); }

Interval iv_clamp(const Interval& a, double lo, double hi) {
    Interval r = a; // std::clamp passes NaN through: keep the nan flag
    if (a.empty_real()) return r;
    r.lo = std::clamp(a.lo, lo, hi);
    r.hi = std::clamp(a.hi, lo, hi);
    return r;
}

DivResult iv_div(const Interval& a, const Interval& b) {
    DivResult res;
    Interval r = Interval::bottom();
    r.nan = a.nan || b.nan;
    if (a.empty_real() || b.empty_real()) { res.value = r; return res; }
    if (b.lo == 0.0 && b.hi == 0.0) {
        res.definite_zero_den = true;
        if (a.lo == 0.0 && a.hi == 0.0) { r.nan = true; } // 0/0: always NaN
        else {
            r.lo = -kInf; // x/0 = +-inf; the sign of the zero is unknown
            r.hi = kInf;
            if (a.contains(0.0)) r.nan = true;
        }
        res.value = r;
        return res;
    }
    if (b.lo <= 0.0 && b.hi >= 0.0) {
        res.possible_zero_den = true;
        r.lo = -kInf;
        r.hi = kInf;
        if (a.contains(0.0)) r.nan = true;
        res.value = r;
        return res;
    }
    bool indet = false;
    double lo = kInf, hi = -kInf;
    const double as[2] = {a.lo, a.hi};
    const double bs[2] = {b.lo, b.hi};
    for (const double x : as) {
        for (const double y : bs) {
            if (std::isinf(x) && std::isinf(y)) { indet = true; continue; }
            const double q = x / y;
            lo = std::min(lo, q);
            hi = std::max(hi, q);
        }
    }
    if (indet) r.nan = true;
    if (lo <= hi) { r.lo = lo; r.hi = hi; }
    res.value = r;
    return res;
}

Interval iv_widen(const Interval& prev, const Interval& next) {
    // Ascending rungs; an unstable bound jumps outward to the next one.
    static constexpr double kRungs[] = {0.0,    0.5,  1.0, 2.0, 4.0,  8.0,
                                        16.0,   64.0, 256.0, 1024.0, 65536.0, 1e6,
                                        1e9,    1e12, 1e300};
    Interval r = next;
    if (next.empty_real() || prev.empty_real()) return r;
    if (next.lo < prev.lo) {
        double w = -kInf;
        for (const double t : kRungs)
            if (-t <= next.lo) { w = -t; break; }
        r.lo = w;
    }
    if (next.hi > prev.hi) {
        double w = kInf;
        for (const double t : kRungs)
            if (t >= next.hi) { w = t; break; }
        r.hi = w;
    }
    return r;
}

// ---------------------------------------------------------------------------
// Atomic transfer functions
// ---------------------------------------------------------------------------

namespace {

bool join_into(Interval& dst, const Interval& v) {
    const Interval j = iv_join(dst, v);
    if (j == dst) return false;
    dst = j;
    return true;
}

// u >= 0.5 can be true / can be false (NaN compares false).
bool possible_true(const Interval& u) { return !u.empty_real() && u.hi >= 0.5; }
bool possible_false(const Interval& u) { return u.nan || (!u.empty_real() && u.lo < 0.5); }

enum class AtomOp {
    Constant, Gain, Sum, Product, UnitDelay, Integrator, Fir2, Saturation,
    Abs, Div, Min, Max, Relational, Switch, Logic, DeadZone, Lookup,
    MovingAvg, Filter1, Counter, Fanout, SampleHold, Split2, Clock, Unknown,
};

/// A library atomic's semantics recovered from its .sbd text spec
/// ("Gain 2", "Lookup1D 0 1 / 5 9", ...). Unparseable specs (custom
/// in-process atomics) degrade to Unknown = top.
struct AtomSem {
    AtomOp op = AtomOp::Unknown;
    std::vector<double> nums; ///< numeric params in spec order (xs for Lookup)
    std::vector<double> ys;   ///< Lookup1D's second list
    std::string word;         ///< Sum signs, Relational/Logic operator
};

AtomSem parse_spec(const std::string& spec) {
    AtomSem s;
    std::istringstream is(spec);
    std::string head;
    if (!(is >> head)) return s;
    const auto nums = [&](std::size_t need) {
        double v = 0.0;
        while (is >> v) s.nums.push_back(v);
        return s.nums.size() >= need;
    };
    const auto pick = [&](AtomOp op, bool ok) {
        s.op = ok ? op : AtomOp::Unknown;
        return s;
    };
    if (head == "Constant") return pick(AtomOp::Constant, nums(1));
    if (head == "Gain") return pick(AtomOp::Gain, nums(1));
    if (head == "Sum") return pick(AtomOp::Sum, bool(is >> s.word));
    if (head == "Product") return pick(AtomOp::Product, nums(1));
    if (head == "UnitDelay") return pick(AtomOp::UnitDelay, nums(1));
    if (head == "Integrator") return pick(AtomOp::Integrator, nums(2));
    if (head == "Fir2") return pick(AtomOp::Fir2, nums(2));
    if (head == "Saturation") return pick(AtomOp::Saturation, nums(2));
    if (head == "Abs") return pick(AtomOp::Abs, true);
    if (head == "Div") return pick(AtomOp::Div, true);
    if (head == "Min") return pick(AtomOp::Min, true);
    if (head == "Max") return pick(AtomOp::Max, true);
    if (head == "Relational") return pick(AtomOp::Relational, bool(is >> s.word));
    if (head == "Switch") return pick(AtomOp::Switch, nums(1));
    if (head == "Logic") return pick(AtomOp::Logic, bool(is >> s.word) && nums(1));
    if (head == "DeadZone") return pick(AtomOp::DeadZone, nums(2));
    if (head == "MovingAvg") return pick(AtomOp::MovingAvg, nums(1));
    if (head == "Filter1") return pick(AtomOp::Filter1, nums(3));
    if (head == "Counter") return pick(AtomOp::Counter, true);
    if (head == "Fanout") return pick(AtomOp::Fanout, nums(1));
    if (head == "SampleHold") return pick(AtomOp::SampleHold, nums(1));
    if (head == "Split2") return pick(AtomOp::Split2, nums(4));
    if (head == "Clock") return pick(AtomOp::Clock, nums(2));
    if (head == "Lookup1D") {
        std::string tok;
        bool after_slash = false;
        while (is >> tok) {
            if (tok == "/") { after_slash = true; continue; }
            char* end = nullptr;
            const double v = std::strtod(tok.c_str(), &end);
            if (end == tok.c_str()) return s;
            (after_slash ? s.ys : s.nums).push_back(v);
        }
        const bool ok = after_slash && s.nums.size() >= 2 && s.nums.size() == s.ys.size();
        return pick(AtomOp::Lookup, ok);
    }
    return s;
}

/// Tri-state comparison: the set of outcomes {0, 1} reachable from the
/// operand intervals, mirroring IEEE semantics (every comparison with NaN
/// is false except !=).
Interval rel_result(const std::string& op, const Interval& a, const Interval& b) {
    bool ct = false, cf = false;
    if (!a.empty_real() && !b.empty_real()) {
        const bool overlap = std::max(a.lo, b.lo) <= std::min(a.hi, b.hi);
        const bool same_singleton = a.lo == a.hi && b.lo == b.hi && a.lo == b.lo;
        if (op == "<") { ct = a.lo < b.hi; cf = a.hi >= b.lo; }
        else if (op == "<=") { ct = a.lo <= b.hi; cf = a.hi > b.lo; }
        else if (op == ">") { ct = a.hi > b.lo; cf = a.lo <= b.hi; }
        else if (op == ">=") { ct = a.hi >= b.lo; cf = a.lo < b.hi; }
        else if (op == "==") { ct = overlap; cf = !same_singleton; }
        else if (op == "!=") { ct = !same_singleton; cf = overlap; }
        else { ct = cf = true; }
    }
    if (a.nan || b.nan) {
        if (op == "!=") ct = true;
        else cf = true;
    }
    Interval r = Interval::bottom();
    if (cf) r = iv_join(r, Interval::point(0.0));
    if (ct) r = iv_join(r, Interval::point(1.0));
    return r;
}

Interval logic_result(const std::string& op, std::span<const Interval> in) {
    for (const Interval& u : in)
        if (u.is_bottom()) return Interval::bottom();
    if (op == "NOT") {
        const bool ct = possible_false(in[0]), cf = possible_true(in[0]);
        Interval r = Interval::bottom();
        if (cf) r = iv_join(r, Interval::point(0.0));
        if (ct) r = iv_join(r, Interval::point(1.0));
        return r;
    }
    bool ct = false, cf = false;
    if (op == "AND") {
        ct = true;
        for (const Interval& u : in) {
            ct = ct && possible_true(u);
            cf = cf || possible_false(u);
        }
    } else if (op == "OR") {
        cf = true;
        for (const Interval& u : in) {
            cf = cf && possible_false(u);
            ct = ct || possible_true(u);
        }
    } else { // XOR
        bool ambiguous = false, parity = false;
        for (const Interval& u : in) {
            const bool pt = possible_true(u), pf = possible_false(u);
            if (pt && pf) ambiguous = true;
            else if (pt) parity = !parity;
        }
        if (ambiguous) { ct = cf = true; }
        else { ct = parity; cf = !parity; }
    }
    Interval r = Interval::bottom();
    if (cf) r = iv_join(r, Interval::point(0.0));
    if (ct) r = iv_join(r, Interval::point(1.0));
    return r;
}

/// One abstract firing of a library atomic: computes outputs from
/// (state, inputs), then applies the state update — the per-instant
/// contract of the concrete interpreter, operation for operation.
void atomic_fire(const AtomSem& sem, std::span<const Interval> in,
                 std::vector<Interval>& state, std::vector<Interval>& out) {
    switch (sem.op) {
    case AtomOp::Constant: out[0] = Interval::point(sem.nums[0]); return;
    case AtomOp::Gain: out[0] = iv_mul(Interval::point(sem.nums[0]), in[0]); return;
    case AtomOp::Sum: {
        Interval acc = Interval::point(0.0);
        for (std::size_t i = 0; i < sem.word.size() && i < in.size(); ++i)
            acc = sem.word[i] == '-' ? iv_sub(acc, in[i]) : iv_add(acc, in[i]);
        out[0] = acc;
        return;
    }
    case AtomOp::Product: {
        Interval acc = Interval::point(1.0);
        for (const Interval& u : in) acc = iv_mul(acc, u);
        out[0] = acc;
        return;
    }
    case AtomOp::UnitDelay:
        out[0] = state[0];
        state[0] = in[0];
        return;
    case AtomOp::Integrator:
        out[0] = state[0];
        state[0] = iv_add(state[0], iv_mul(Interval::point(sem.nums[0]), in[0]));
        return;
    case AtomOp::Fir2:
        out[0] = iv_add(iv_mul(Interval::point(sem.nums[0]), in[0]),
                        iv_mul(Interval::point(sem.nums[1]), state[0]));
        state[0] = in[0];
        return;
    case AtomOp::Saturation: out[0] = iv_clamp(in[0], sem.nums[0], sem.nums[1]); return;
    case AtomOp::Abs: out[0] = iv_abs(in[0]); return;
    case AtomOp::Div: out[0] = iv_div(in[0], in[1]).value; return;
    case AtomOp::Min: out[0] = iv_min(in[0], in[1]); return;
    case AtomOp::Max: out[0] = iv_max(in[0], in[1]); return;
    case AtomOp::Relational: out[0] = rel_result(sem.word, in[0], in[1]); return;
    case AtomOp::Switch: {
        const Interval& ctrl = in[1];
        const double th = sem.nums[0];
        Interval r = Interval::bottom();
        // NaN control compares false and selects u2.
        if (!ctrl.empty_real() && ctrl.hi >= th) r = iv_join(r, in[0]);
        if (ctrl.nan || (!ctrl.empty_real() && ctrl.lo < th)) r = iv_join(r, in[2]);
        out[0] = r;
        return;
    }
    case AtomOp::Logic: out[0] = logic_result(sem.word, in); return;
    case AtomOp::DeadZone: {
        const double lo = sem.nums[0], hi = sem.nums[1];
        const Interval& u = in[0];
        Interval r = Interval::bottom();
        if (!u.empty_real()) {
            if (u.lo < lo)
                r = iv_join(r, iv_sub(Interval::make(u.lo, std::min(u.hi, lo)),
                                      Interval::point(lo)));
            if (u.hi > hi)
                r = iv_join(r, iv_sub(Interval::make(std::max(u.lo, hi), u.hi),
                                      Interval::point(hi)));
            if (u.hi >= lo && u.lo <= hi) r = iv_join(r, Interval::point(0.0));
        }
        // A NaN input fails both range tests and yields 0, not NaN.
        if (u.nan) r = iv_join(r, Interval::point(0.0));
        out[0] = r;
        return;
    }
    case AtomOp::Lookup: {
        const Interval& u = in[0];
        Interval r = Interval::bottom();
        if (!u.empty_real()) {
            if (!u.nan && u.hi <= sem.nums.front()) r = Interval::point(sem.ys.front());
            else if (!u.nan && u.lo >= sem.nums.back()) r = Interval::point(sem.ys.back());
            else {
                // Interpolation stays within the breakpoint values up to a
                // final rounding step; widen both bounds by one ulp.
                double lo = sem.ys[0], hi = sem.ys[0];
                for (const double y : sem.ys) { lo = std::min(lo, y); hi = std::max(hi, y); }
                r = Interval::make(std::nextafter(lo, -kInf), std::nextafter(hi, kInf));
            }
        }
        if (u.nan) { r.nan = true; r = iv_join(r, Interval::top()); }
        out[0] = r;
        return;
    }
    case AtomOp::MovingAvg: {
        Interval acc = in[0];
        for (const Interval& s : state) acc = iv_add(acc, s);
        out[0] = iv_div(acc, Interval::point(static_cast<double>(state.size() + 1))).value;
        for (std::size_t i = 0; i + 1 < state.size(); ++i) state[i] = state[i + 1];
        state.back() = in[0];
        return;
    }
    case AtomOp::Filter1: {
        const double b0 = sem.nums[0], b1 = sem.nums[1], a1 = sem.nums[2];
        const Interval w = iv_sub(in[0], iv_mul(Interval::point(a1), state[0]));
        // The Moore variant (b0 == 0) computes y = b1*s directly; going
        // through b0*w would fabricate a 0*inf NaN the kernel never sees.
        out[0] = b0 == 0.0 ? iv_mul(Interval::point(b1), state[0])
                           : iv_add(iv_mul(Interval::point(b0), w),
                                    iv_mul(Interval::point(b1), state[0]));
        state[0] = w;
        return;
    }
    case AtomOp::Counter: {
        out[0] = state[0];
        Interval next = Interval::bottom();
        if (possible_false(in[0])) next = iv_join(next, state[0]);
        if (possible_true(in[0]))
            next = iv_join(next, iv_add(state[0], Interval::point(1.0)));
        state[0] = next;
        return;
    }
    case AtomOp::Fanout:
        for (Interval& y : out) y = in[0];
        return;
    case AtomOp::SampleHold: {
        out[0] = state[0];
        Interval next = Interval::bottom();
        if (possible_false(in[1])) next = iv_join(next, state[0]);
        if (possible_true(in[1])) next = iv_join(next, in[0]);
        state[0] = next;
        return;
    }
    case AtomOp::Split2:
        out[0] = iv_add(iv_mul(Interval::point(sem.nums[0]), in[0]),
                        Interval::point(sem.nums[1]));
        out[1] = iv_add(iv_mul(Interval::point(sem.nums[2]), in[0]),
                        Interval::point(sem.nums[3]));
        return;
    case AtomOp::Clock: {
        const double p = sem.nums[0], ph = sem.nums[1];
        const Interval& s = state[0];
        if (s.lo == s.hi && !s.nan) {
            out[0] = Interval::point(s.lo == ph ? 1.0 : 0.0);
            const double n = s.lo + 1.0;
            state[0] = Interval::point(n >= p ? 0.0 : n);
        } else {
            out[0] = (!s.empty_real() && ph >= s.lo && ph <= s.hi)
                         ? Interval::make(0.0, 1.0)
                         : Interval::point(0.0);
            Interval next = Interval::bottom();
            if (s.hi + 1.0 >= p) next = iv_join(next, Interval::point(0.0));
            if (s.lo + 1.0 < p)
                next = iv_join(next, Interval::make(s.lo + 1.0, std::min(s.hi + 1.0, p - 1.0)));
            state[0] = next;
        }
        return;
    }
    case AtomOp::Unknown:
        // Custom in-process atomic with no recoverable semantics. Assume
        // it is NaN-free (top's nan flag is false) but otherwise anything.
        for (Interval& y : out) y = Interval::top();
        for (Interval& s : state) s = Interval::top();
        return;
    }
}

BlockSummary top_summary(std::size_t nouts) {
    BlockSummary s;
    s.first_outputs.assign(nouts, Interval::top());
    s.outputs.assign(nouts, Interval::top());
    s.instants = 1;
    return s;
}

std::vector<std::size_t> topo_order(const codegen::Profile& prof) {
    const std::size_t n = prof.functions.size();
    std::vector<std::size_t> indeg(n, 0);
    std::vector<std::vector<std::size_t>> adj(n);
    for (const auto& [a, b] : prof.pdg_edges) {
        adj[a].push_back(b);
        ++indeg[b];
    }
    std::vector<std::size_t> order;
    order.reserve(n);
    std::vector<bool> done(n, false);
    for (std::size_t round = 0; round < n; ++round) {
        // Smallest ready index first: deterministic across platforms.
        std::size_t pick = n;
        for (std::size_t i = 0; i < n; ++i)
            if (!done[i] && indeg[i] == 0) { pick = i; break; }
        if (pick == n) break; // cyclic PDG: compiler would have rejected it
        done[pick] = true;
        order.push_back(pick);
        for (const std::size_t b : adj[pick]) --indeg[b];
    }
    return order;
}

std::string interval_key(const Interval& iv) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%016llx%016llx%c",
                  static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(iv.lo)),
                  static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(iv.hi)),
                  iv.nan ? 'n' : '-');
    return buf;
}

std::string hazard_key(const Diagnostic& d) {
    return d.code + "|" + std::to_string(d.loc.line) + "|" + std::to_string(d.loc.col) + "|" +
           d.message;
}

} // namespace

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

Analyzer::Analyzer(const codegen::CompiledSystem& sys, AbsOptions opts)
    : sys_(&sys), opts_(std::move(opts)) {
    memo_ = opts_.memo ? opts_.memo : std::make_shared<SummaryMemo>();
}

const BlockSummary& Analyzer::analyze(const BlockPtr& block, std::span<const Interval> first_inputs,
                                      std::span<const Interval> all_inputs) {
    std::vector<Interval> fin(first_inputs.begin(), first_inputs.end());
    std::vector<Interval> ain;
    ain.reserve(all_inputs.size());
    for (std::size_t i = 0; i < all_inputs.size(); ++i)
        ain.push_back(i < fin.size() ? iv_join(all_inputs[i], fin[i]) : all_inputs[i]);

    std::string key = fp_.of(*block).hex();
    for (const Interval& iv : fin) key += interval_key(iv);
    key += '/';
    for (const Interval& iv : ain) key += interval_key(iv);

    if (const auto it = memo_->map.find(key); it != memo_->map.end()) {
        ++memo_->hits;
        return *it->second;
    }
    ++memo_->computed;
    BlockSummary s = compute(block, fin, ain);
    const auto [pos, inserted] =
        memo_->map.emplace(std::move(key), std::make_unique<BlockSummary>(std::move(s)));
    (void)inserted;
    return *pos->second;
}

const BlockSummary& Analyzer::analyze_root(const BlockPtr& root) {
    const std::vector<Interval> in(root->num_inputs(), opts_.assumed_inputs);
    return analyze(root, in, in);
}

BlockSummary Analyzer::compute(const BlockPtr& block, std::span<const Interval> first_in,
                               std::span<const Interval> all_in) {
    if (block->is_opaque()) return top_summary(block->num_outputs());
    if (block->is_atomic())
        return compute_atomic(static_cast<const AtomicBlock&>(*block), first_in, all_in);
    return compute_macro(static_cast<const MacroBlock&>(*block), first_in, all_in);
}

BlockSummary Analyzer::compute_atomic(const AtomicBlock& a, std::span<const Interval> first_in,
                                      std::span<const Interval> all_in) {
    const AtomSem sem = parse_spec(a.text_spec());
    if (sem.op == AtomOp::Unknown) return top_summary(a.num_outputs());

    BlockSummary sum;
    std::vector<Interval> state;
    state.reserve(a.initial_state().size());
    for (const double v : a.initial_state()) state.push_back(Interval::point(v));
    const std::vector<Interval> init = state;

    // Instant 0 is exact: initial state, first-instant inputs.
    sum.first_outputs.assign(a.num_outputs(), Interval::bottom());
    atomic_fire(sem, first_in, state, sum.first_outputs);
    sum.outputs = sum.first_outputs;

    // All-instant fixpoint over the accumulated state join. The join
    // includes the *initial* state so that a triggered instance held for
    // k instants (a time-dilated execution) is covered too.
    std::vector<Interval> acc(init.size());
    for (std::size_t i = 0; i < init.size(); ++i) acc[i] = iv_join(init[i], state[i]);
    sum.instants = 1;
    for (std::size_t iter = 1; iter <= opts_.max_instants; ++iter) {
        std::vector<Interval> st = acc;
        std::vector<Interval> out(a.num_outputs(), Interval::bottom());
        atomic_fire(sem, all_in, st, out);
        bool changed = false;
        for (std::size_t o = 0; o < out.size(); ++o) changed |= join_into(sum.outputs[o], out[o]);
        for (std::size_t i = 0; i < acc.size(); ++i) {
            Interval next = iv_join(acc[i], st[i]);
            if (iter > opts_.widen_after) {
                const Interval w = iv_widen(acc[i], next);
                if (!(w == next)) sum.widened = true;
                next = w;
            }
            changed |= join_into(acc[i], next);
        }
        ++sum.instants;
        if (!changed) break;
    }
    return sum;
}

BlockSummary Analyzer::compute_macro(const MacroBlock& m, std::span<const Interval> first_in,
                                     std::span<const Interval> all_in) {
    const codegen::CompiledBlock& cb = sys_->at(m);
    const codegen::CodeUnit& code = *cb.code;
    const std::vector<std::size_t> order = topo_order(cb.profile);

    // Per-sub accumulation across every abstract pass: argument intervals
    // (first instant vs. all instants), trigger intervals, call evidence.
    struct SubCtx {
        std::vector<Interval> first_args, all_args;
        Interval trig_first = Interval::bottom();
        Interval trig_all = Interval::bottom();
        bool has_trigger = false;
        bool trig_first_seen = false;
        bool called_at_0 = false;
        bool ever_called = false;
    };
    std::vector<SubCtx> subs(m.num_subs());
    for (std::size_t i = 0; i < m.num_subs(); ++i) {
        subs[i].first_args.assign(m.sub(i).type->num_inputs(), Interval::bottom());
        subs[i].all_args.assign(m.sub(i).type->num_inputs(), Interval::bottom());
    }

    std::vector<std::string> hazard_seen;
    std::vector<Diagnostic> hazards;
    const auto absorb = [&](const Diagnostic& d) {
        const std::string key = hazard_key(d);
        if (std::find(hazard_seen.begin(), hazard_seen.end(), key) != hazard_seen.end()) return;
        hazard_seen.push_back(key);
        hazards.push_back(d);
    };

    bool pass_changed = false;

    // Abstractly executes [begin, end) of a generated function body over
    // the given slot/counter stores. Ambiguous guards fork the stores and
    // join; triggered calls join fire and hold outcomes.
    std::function<void(const codegen::GenFunction&, std::size_t, std::size_t,
                       std::vector<Interval>&, std::vector<Interval>&,
                       std::span<const Interval>, bool)>
        exec_range = [&](const codegen::GenFunction& fn, std::size_t begin, std::size_t end,
                         std::vector<Interval>& slots, std::vector<Interval>& counters,
                         std::span<const Interval> params, bool first) {
            const auto value = [&](const codegen::ValueRef& v) -> Interval {
                if (v.kind == codegen::ValueRef::Kind::Param)
                    return params[static_cast<std::size_t>(v.index)];
                return slots[static_cast<std::size_t>(v.index)];
            };
            for (std::size_t idx = begin; idx < end; ++idx) {
                const codegen::Stmt& st = fn.body[idx];
                if (const auto* gb = std::get_if<codegen::GuardBegin>(&st)) {
                    // Find the matching GuardEnd (guards do not nest today,
                    // but scan with a depth counter anyway).
                    std::size_t gend = idx + 1;
                    for (int depth = 1; gend < end; ++gend) {
                        if (std::holds_alternative<codegen::GuardBegin>(fn.body[gend])) ++depth;
                        else if (std::holds_alternative<codegen::GuardEnd>(fn.body[gend]) &&
                                 --depth == 0)
                            break;
                    }
                    const Interval c = counters[static_cast<std::size_t>(gb->counter)];
                    if (!c.empty_real() && c.lo >= 1.0) {
                        idx = gend; // counter definitely nonzero: region skipped
                    } else if (c.lo == 0.0 && c.hi == 0.0) {
                        continue; // definitely zero: execute the region inline
                    } else {
                        std::vector<Interval> fslots = slots, fcounters = counters;
                        exec_range(fn, idx + 1, gend, fslots, fcounters, params, first);
                        for (std::size_t i = 0; i < slots.size(); ++i)
                            slots[i] = iv_join(slots[i], fslots[i]);
                        for (std::size_t i = 0; i < counters.size(); ++i)
                            counters[i] = iv_join(counters[i], fcounters[i]);
                        idx = gend;
                    }
                    continue;
                }
                if (std::holds_alternative<codegen::GuardEnd>(st)) continue;
                if (const auto* bump = std::get_if<codegen::BumpStmt>(&st)) {
                    Interval& c = counters[static_cast<std::size_t>(bump->counter)];
                    const double mod = static_cast<double>(bump->mod);
                    if (c.lo == c.hi && !c.nan) {
                        const double n = c.lo + 1.0;
                        c = Interval::point(n >= mod ? 0.0 : n);
                    } else {
                        c = Interval::make(0.0, mod - 1.0);
                    }
                    continue;
                }
                if (const auto* as = std::get_if<codegen::AssignStmt>(&st)) {
                    slots[static_cast<std::size_t>(as->dst_slot)] = value(as->src);
                    continue;
                }
                const auto& call = std::get<codegen::CallStmt>(st);
                SubCtx& ctx = subs[static_cast<std::size_t>(call.sub)];
                const BlockPtr& subty = m.sub(static_cast<std::size_t>(call.sub)).type;
                const codegen::Profile& sp = sys_->at(*subty).profile;
                const auto& sig = sp.functions[static_cast<std::size_t>(call.fn)];
                bool fire = true, hold = false;
                if (call.trigger) {
                    const Interval tr = value(*call.trigger);
                    ctx.has_trigger = true;
                    pass_changed |= join_into(ctx.trig_all, tr);
                    if (first) {
                        ctx.trig_first_seen = true;
                        pass_changed |= join_into(ctx.trig_first, tr);
                    }
                    fire = possible_true(tr);
                    hold = possible_false(tr) || tr.is_bottom();
                }
                if (!fire) continue; // definitely held: result slots keep their values
                ctx.ever_called = true;
                if (first) ctx.called_at_0 = true;
                for (std::size_t k = 0; k < sig.reads.size(); ++k) {
                    const Interval av = value(call.args[k]);
                    pass_changed |= join_into(ctx.all_args[sig.reads[k]], av);
                    if (first) pass_changed |= join_into(ctx.first_args[sig.reads[k]], av);
                }
                // A triggered sub held at instant 0 first fires later, with
                // later args: its "first firing" inputs must then cover all.
                const std::vector<Interval>& feff =
                    ctx.called_at_0 && !(ctx.has_trigger && possible_false(ctx.trig_first))
                        ? ctx.first_args
                        : ctx.all_args;
                // Child hazards are NOT absorbed here: mid-fixpoint queries
                // see artificially narrow args whose spurious "definitely"
                // hazards would stick. The audit below re-queries each sub
                // once with the converged args and takes those hazards.
                const BlockSummary& ss = analyze(subty, feff, ctx.all_args);
                const std::vector<Interval>& outs = first ? ss.first_outputs : ss.outputs;
                for (std::size_t r = 0; r < sig.writes.size(); ++r) {
                    Interval res = outs[sig.writes[r]];
                    Interval& slot = slots[static_cast<std::size_t>(call.results[r])];
                    slot = hold ? iv_join(slot, res) : res;
                }
            }
        };

    const auto run_pass = [&](std::vector<Interval>& slots, std::vector<Interval>& counters,
                              std::span<const Interval> params,
                              bool first) -> std::vector<Interval> {
        std::vector<Interval> outputs(m.num_outputs(), Interval::bottom());
        for (const std::size_t fidx : order) {
            const codegen::GenFunction& fn = code.functions[fidx];
            exec_range(fn, 0, fn.body.size(), slots, counters, params, first);
            const auto value = [&](const codegen::ValueRef& v) -> Interval {
                if (v.kind == codegen::ValueRef::Kind::Param)
                    return params[static_cast<std::size_t>(v.index)];
                return slots[static_cast<std::size_t>(v.index)];
            };
            for (std::size_t r = 0; r < fn.sig.writes.size(); ++r)
                outputs[fn.sig.writes[r]] = value(fn.returns[r]);
        }
        return outputs;
    };

    BlockSummary sum;

    // Instant 0: zeroed slots and counters, exact single pass.
    std::vector<Interval> slots(code.num_slots, Interval::point(0.0));
    std::vector<Interval> counters(code.counter_mods.size(), Interval::point(0.0));
    sum.first_outputs = run_pass(slots, counters, first_in, true);
    sum.outputs = sum.first_outputs;

    std::vector<Interval> acc_slots(code.num_slots), acc_counters(counters.size());
    for (std::size_t i = 0; i < slots.size(); ++i)
        acc_slots[i] = iv_join(Interval::point(0.0), slots[i]);
    for (std::size_t i = 0; i < counters.size(); ++i)
        acc_counters[i] = iv_join(Interval::point(0.0), counters[i]);

    sum.instants = 1;
    for (std::size_t iter = 1; iter <= opts_.max_instants; ++iter) {
        pass_changed = false;
        std::vector<Interval> ws = acc_slots, wc = acc_counters;
        const std::vector<Interval> out = run_pass(ws, wc, all_in, false);
        bool changed = pass_changed;
        for (std::size_t o = 0; o < out.size(); ++o) changed |= join_into(sum.outputs[o], out[o]);
        for (std::size_t i = 0; i < acc_slots.size(); ++i) {
            Interval next = iv_join(acc_slots[i], ws[i]);
            if (iter > opts_.widen_after) {
                const Interval w = iv_widen(acc_slots[i], next);
                if (!(w == next)) sum.widened = true;
                next = w;
            }
            changed |= join_into(acc_slots[i], next);
        }
        for (std::size_t i = 0; i < acc_counters.size(); ++i)
            changed |= join_into(acc_counters[i], wc[i]);
        ++sum.instants;
        if (!changed) break;
    }

    // Hazard audit, on the fixpoint accumulations only — early iterations
    // see artificially narrow intervals and would produce spurious
    // "definitely" verdicts.
    for (std::size_t i = 0; i < m.num_subs(); ++i) {
        const auto& sb = m.sub(i);
        const SubCtx& ctx = subs[i];
        const std::string where = "sub-block '" + sb.name + "' in block '" + m.type_name() + "'";
        if (ctx.has_trigger) {
            const Interval& t = ctx.trig_all;
            if (!t.nan && (t.empty_real() || t.hi < 0.5)) {
                absorb(Diagnostic{"SBD027", Severity::Warning,
                                  sb.trigger_loc.line ? sb.trigger_loc : sb.loc,
                                  "unreachable code: " + where +
                                      " can never fire: its trigger is always < 0.5",
                                  {"trigger range " + t.str_or("(none)")}});
            } else if (ctx.trig_first_seen && !ctx.trig_first.nan &&
                       (ctx.trig_first.empty_real() || ctx.trig_first.hi < 0.5)) {
                absorb(Diagnostic{"SBD028", Severity::Warning,
                                  sb.trigger_loc.line ? sb.trigger_loc : sb.loc,
                                  where + " cannot fire at instant 0: its outputs read as "
                                          "the initial value 0 until the first fire",
                                  {"instant-0 trigger range " + ctx.trig_first.str_or("(none)")}});
            }
        }
        if (!ctx.ever_called) continue;
        // One final summary query with the converged args: its hazards
        // (including nested ones) are the ones decided on full ranges.
        {
            const std::vector<Interval>& feff =
                ctx.called_at_0 && !(ctx.has_trigger && possible_false(ctx.trig_first))
                    ? ctx.first_args
                    : ctx.all_args;
            const BlockSummary& ss = analyze(sb.type, feff, ctx.all_args);
            for (const Diagnostic& d : ss.hazards) absorb(d);
        }
        if (!sb.type->is_atomic() || sb.type->is_opaque()) continue;
        const AtomSem sem = parse_spec(static_cast<const AtomicBlock&>(*sb.type).text_spec());
        std::vector<Interval> args(ctx.all_args.size());
        for (std::size_t k = 0; k < args.size(); ++k)
            args[k] = iv_join(ctx.first_args[k], ctx.all_args[k]);
        if (sem.op == AtomOp::Div && args.size() == 2 && !args[1].is_bottom()) {
            const Interval& den = args[1];
            if (!den.empty_real() && den.lo == 0.0 && den.hi == 0.0 && !den.nan) {
                absorb(Diagnostic{"SBD022", Severity::Error, sb.loc,
                                  "division by zero: the denominator of " + where +
                                      " is always 0",
                                  {"numerator range " + args[0].str_or("(none)")}});
            } else if (den.contains(0.0) || den.nan) {
                absorb(Diagnostic{"SBD023", Severity::Warning, sb.loc,
                                  "possible division by zero: the denominator of " + where +
                                      " spans " + to_string(den) +
                                      (den.nan && !den.contains(0.0) ? ", which may be NaN"
                                                                     : ", which contains 0"),
                                  {}});
            }
        }
        if (sem.op == AtomOp::Switch && args.size() == 3 && !args[1].is_bottom()) {
            const Interval& ctrl = args[1];
            const double th = sem.nums[0];
            char thbuf[32];
            std::snprintf(thbuf, sizeof thbuf, "%.6g", th);
            if (!ctrl.nan && !ctrl.empty_real() && ctrl.lo >= th) {
                absorb(Diagnostic{"SBD027", Severity::Warning, sb.loc,
                                  "dead branch: " + where + " never selects input 'u2': its "
                                      "control is always >= " + thbuf,
                                  {"control range " + to_string(ctrl)}});
            } else if ((ctrl.empty_real() && ctrl.nan) || (!ctrl.empty_real() && ctrl.hi < th)) {
                absorb(Diagnostic{"SBD027", Severity::Warning, sb.loc,
                                  "dead branch: " + where + " never selects input 'u1': its "
                                      "control is always < " + thbuf,
                                  {"control range " + ctrl.str_or("NaN")}});
            }
        }
    }
    sum.hazards = std::move(hazards);
    return sum;
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

std::vector<Diagnostic> deep_diagnostics(const codegen::CompiledSystem& sys, const BlockPtr& root,
                                         const AbsOptions& opts) {
    Analyzer az(sys, opts);
    const BlockSummary& sum = az.analyze_root(root);
    std::vector<Diagnostic> out = sum.hazards;
    for (std::size_t o = 0; o < root->num_outputs(); ++o) {
        const Interval& all = sum.outputs[o];
        const Interval& first = sum.first_outputs[o];
        const std::string head = "output '" + root->output_name(o) + "' of block '" +
                                 root->type_name() + "' ";
        if (all.definitely_nonfinite()) {
            out.push_back(Diagnostic{"SBD024", Severity::Error, root->def_loc(),
                                     head + (all.empty_real() ? "is NaN on every instant"
                                                              : "is infinite on every instant"),
                                     {}});
        } else if (all.nan) {
            out.push_back(Diagnostic{"SBD025", Severity::Warning, root->def_loc(),
                                     head + "may be NaN",
                                     {"output range " + to_string(all)}});
        } else if (all.is_finite_singleton() && first == all) {
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.6g", all.lo);
            out.push_back(Diagnostic{"SBD026", Severity::Warning, root->def_loc(),
                                     head + "is always the constant " + buf, {}});
        }
    }
    return out;
}

} // namespace sbd::analysis
