// Static cost and code-size model (sbd-lint --report-cost): per-method,
// per-block, per-interface-function operation counts of the generated IR,
// pseudocode line counts (the Section 5 code-size measure) and the size of
// the emitted C++ — computed for every clustering method so the paper's
// modularity-vs-code-size trade-off is visible per model without running
// anything.
#ifndef SBD_ANALYSIS_COST_HPP
#define SBD_ANALYSIS_COST_HPP

#include <string>
#include <vector>

#include "core/ir.hpp"
#include "core/pipeline.hpp"

namespace sbd::analysis {

/// Cost of one generated interface function.
struct FunctionCost {
    std::string name;
    codegen::OpCounts ops;
};

/// Cost of one compiled macro block under one method.
struct BlockCost {
    std::string block;
    std::vector<FunctionCost> functions;
    codegen::OpCounts ops;  ///< totals over `functions`
    std::size_t lines = 0;  ///< CodeUnit::line_count()
};

/// One clustering method's column of the report. When the method rejects
/// the model (SdgCycleError or a modular-compilation failure) `accepted`
/// is false and `reject_reason` says why; the totals are then zero.
struct MethodCost {
    std::string method;
    bool accepted = false;
    std::string reject_reason;
    std::size_t functions = 0; ///< generated interface functions
    codegen::OpCounts ops;     ///< statement totals over all macro blocks
    std::size_t lines = 0;     ///< total pseudocode lines (Section 5)
    std::size_t code_bytes = 0;
    /// "c++" when emit_cpp succeeded, "pseudocode" when some atomic lacks
    /// emit-time semantics (e.g. opaque vendor blocks) and the pseudocode
    /// rendering was measured instead.
    std::string code_kind;
    std::vector<BlockCost> blocks;
};

/// The full per-model report: one MethodCost per clustering method, in
/// canonical method order.
struct CostReport {
    std::string file;  ///< display name ("models/thermostat.sbd", "<string>")
    std::string model; ///< root block type name
    std::vector<MethodCost> methods;
};

/// Compiles `root` under every clustering method (through `cache`, shared
/// with lint probes when given) and measures the generated code. Never
/// throws on method rejection — that is recorded per method.
CostReport cost_report(const BlockPtr& root, const std::string& display_name,
                       std::shared_ptr<codegen::ProfileCache> cache = nullptr);

/// Aligned per-method summary table (one row per method).
std::string render_cost_table(const CostReport& report);

/// Machine-readable rendering: one JSON object per report with the full
/// per-block, per-function breakdown. Stable field names.
std::string render_cost_json(const CostReport& report);

} // namespace sbd::analysis

#endif
