#ifndef SBD_ANALYSIS_DIAGNOSTICS_HPP
#define SBD_ANALYSIS_DIAGNOSTICS_HPP

#include <span>
#include <string>
#include <vector>

#include "sbd/block.hpp"

namespace sbd::analysis {

/// Diagnostic severity. Errors make sbd-lint exit nonzero; warnings flag
/// likely mistakes that do not prevent compilation; notes ride along with a
/// parent diagnostic (witness paths, suggestions).
enum class Severity { Note, Warning, Error };

const char* to_string(Severity s);

/// The stable diagnostic catalog. Codes are append-only: a released code
/// never changes meaning, so build systems may grep or suppress by code.
///
///   SBD001  syntax error                                     error
///   SBD002  unknown block type / bad instantiation           error
///   SBD003  unknown port or instance reference               error
///   SBD004  multiply-driven signal                           error
///   SBD005  self-connection (instantaneous self-loop)        error
///   SBD006  malformed trigger                                error
///   SBD007  unconnected sub-block input                      error
///   SBD008  unconnected diagram output                       error
///   SBD009  dangling sub-block output                        warning
///   SBD010  unused diagram input                             warning
///   SBD011  dead sub-block (reaches no output)               warning
///   SBD012  dependency cycle (with witness path)             error
///   SBD013  false cycle: flat diagram acyclic, the chosen    error
///           clustering method still rejects (witness +
///           which methods accept)
///   SBD014  extern: unknown port in function declaration     error
///   SBD015  extern: output not written by exactly one fn     error
///   SBD016  extern: cyclic call-order relation               error
///   SBD017  extern: order names an unknown function          error
///   SBD018  extern: inert function (combinational block,     warning
///           function writes nothing)
///   SBD019  generated profile violates the modular           error
///           compilation contract
///   SBD020  generated PDG edge unjustified by any dataflow   warning
///   SBD021  SAT conflict budget exhausted: clustering        warning
///           degraded (or compilation gave up) on this block
///
/// Deep semantic analysis (sbd-lint --deep; interval abstract
/// interpretation over the generated interface-function IR, analysis/
/// absint.hpp):
///
///   SBD022  division by zero: denominator is always 0        error
///   SBD023  possible division by zero: denominator range     warning
///           contains 0 (or may be NaN)
///   SBD024  a diagram output is NaN or infinite on every     error
///           instant
///   SBD025  a diagram output may be NaN                      warning
///   SBD026  a diagram output is a compile-time constant      warning
///   SBD027  dead code: a Switch arm is never selected, or a  warning
///           triggered sub-block can never fire
///   SBD028  a triggered sub-block cannot fire at instant 0:  warning
///           its held outputs read as the initial value 0
struct Diagnostic {
    std::string code; ///< "SBDnnn"
    Severity severity = Severity::Error;
    SourceLoc loc;    ///< (0,0) when no source position is known
    std::string message;
    /// Attached notes, e.g. a cycle witness path or the list of clustering
    /// methods that would accept the diagram.
    std::vector<std::string> notes;
};

/// All diagnostics produced by linting one model, plus the display name
/// used when rendering ("models/thermostat.sbd", "<string>", ...).
struct LintReport {
    std::string file;
    std::vector<Diagnostic> diagnostics;

    std::size_t count(Severity s) const;
    bool has_errors() const { return count(Severity::Error) > 0; }

    /// Orders diagnostics by source position, then code (diagnostics
    /// without a position sort last). Renderers expect sorted reports.
    void sort();
};

/// Classic compiler-style rendering:
///   file:12:3: error: [SBD004] multiply-driven: ...
///       note: ...
std::string render_text(const LintReport& report);

/// Machine-readable rendering: one JSON object with a "diagnostics" array
/// and severity totals. Stable field names; strings are JSON-escaped.
std::string render_json(const LintReport& report);

/// One row of the machine-readable diagnostic catalog: the rule metadata
/// behind the SARIF tool.driver.rules array and `sbd-lint --catalog`.
struct CatalogEntry {
    const char* code;
    Severity severity;
    const char* summary;
};

/// The full catalog, SBD001..SBD028, in code order.
std::span<const CatalogEntry> catalog();

/// SARIF 2.1.0 rendering of a batch of reports: one run, one result per
/// diagnostic, the catalog as the rule table. `tool_version` defaults to
/// the library version baked into the build.
struct SarifOptions {
    std::string tool_name = "sbd-lint";
    std::string tool_version;
    std::string info_uri = "https://example.org/sbd/diagnostics";
};
std::string render_sarif(std::span<const LintReport> reports, const SarifOptions& opts = {});

} // namespace sbd::analysis

#endif
