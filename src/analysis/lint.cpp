#include "analysis/lint.hpp"

#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "core/contract.hpp"
#include "resilience/budget.hpp"
#include "sbd/flatten.hpp"
#include "sbd/opaque.hpp"

namespace sbd::analysis {

namespace {

using codegen::Method;

constexpr Method kAllMethods[] = {Method::Monolithic,  Method::StepGet,
                                  Method::Dynamic,     Method::DisjointSat,
                                  Method::DisjointGreedy, Method::Singletons};

void pass_parse_issues(const text::ParsedFile& file, LintReport& rep) {
    for (const auto& iss : file.issues)
        rep.diagnostics.push_back(Diagnostic{iss.code, Severity::Error, iss.loc, iss.message, {}});
}

/// SBD007..SBD011: port connectivity and dead sub-blocks of one macro.
void pass_connectivity(const MacroBlock& m, LintReport& rep) {
    const auto diag = [&](const char* code, Severity sev, SourceLoc loc, std::string msg) {
        if (!loc.valid()) loc = m.def_loc();
        rep.diagnostics.push_back(Diagnostic{code, sev, loc, std::move(msg), {}});
    };
    const std::string in_block = "' in block '" + m.type_name() + "'";

    // Usage maps fed by wires and triggers.
    std::vector<bool> input_used(m.num_inputs(), false);
    std::vector<std::vector<bool>> subout_used(m.num_subs());
    for (std::size_t s = 0; s < m.num_subs(); ++s)
        subout_used[s].assign(m.sub(s).type->num_outputs(), false);
    const auto mark_source = [&](const Endpoint& src) {
        if (src.kind == Endpoint::Kind::MacroInput) input_used[src.port] = true;
        else subout_used[src.sub][src.port] = true;
    };
    for (const Connection& c : m.connections()) mark_source(c.src);
    for (std::size_t s = 0; s < m.num_subs(); ++s)
        if (m.sub(s).trigger) mark_source(*m.sub(s).trigger);

    // SBD007 / SBD008: every sub input and every diagram output needs a
    // writer (same condition as MacroBlock::validate, but reported per
    // port with a stable code instead of aborting at the first one).
    for (std::size_t s = 0; s < m.num_subs(); ++s) {
        const Block& b = *m.sub(s).type;
        for (std::size_t i = 0; i < b.num_inputs(); ++i) {
            const Endpoint dst{Endpoint::Kind::SubInput, static_cast<std::int32_t>(s),
                               static_cast<std::int32_t>(i)};
            if (m.writer_of(dst) == nullptr)
                diag("SBD007", Severity::Error, m.sub(s).loc,
                     "input '" + b.input_name(i) + "' of sub-block '" + m.sub(s).name +
                         in_block + " is unconnected");
        }
    }
    for (std::size_t o = 0; o < m.num_outputs(); ++o) {
        const Endpoint dst{Endpoint::Kind::MacroOutput, -1, static_cast<std::int32_t>(o)};
        if (m.writer_of(dst) == nullptr)
            diag("SBD008", Severity::Error, m.def_loc(),
                 "output '" + m.output_name(o) + "' of block '" + m.type_name() +
                     "' is unconnected");
    }

    // SBD011: sub-blocks from which no diagram output is reachable (via
    // wires or trigger edges) compute values nobody observes.
    const std::size_t sink = m.num_subs();
    graph::Digraph flow(m.num_subs() + 1);
    for (const Connection& c : m.connections()) {
        if (c.src.kind != Endpoint::Kind::SubOutput) continue;
        if (c.dst.kind == Endpoint::Kind::MacroOutput)
            flow.add_edge(static_cast<graph::NodeId>(c.src.sub),
                          static_cast<graph::NodeId>(sink));
        else
            flow.add_edge(static_cast<graph::NodeId>(c.src.sub),
                          static_cast<graph::NodeId>(c.dst.sub));
    }
    for (std::size_t s = 0; s < m.num_subs(); ++s) {
        const auto& trig = m.sub(s).trigger;
        if (trig && trig->kind == Endpoint::Kind::SubOutput)
            flow.add_edge(static_cast<graph::NodeId>(trig->sub), static_cast<graph::NodeId>(s));
    }
    const auto live = flow.reaching_to(static_cast<graph::NodeId>(sink));
    std::vector<bool> dead(m.num_subs(), false);
    for (std::size_t s = 0; s < m.num_subs(); ++s) {
        if (m.num_outputs() == 0) break; // nothing can be live; pointless to flag all
        if (live.test(s)) continue;
        dead[s] = true;
        diag("SBD011", Severity::Warning, m.sub(s).loc,
             "sub-block '" + m.sub(s).name + in_block +
                 " is dead: none of its outputs reaches a diagram output");
    }

    // SBD009 / SBD010: sources feeding nothing. Outputs of dead sub-blocks
    // are skipped — SBD011 already covers the whole instance.
    for (std::size_t s = 0; s < m.num_subs(); ++s) {
        if (dead[s]) continue;
        const Block& b = *m.sub(s).type;
        for (std::size_t o = 0; o < b.num_outputs(); ++o)
            if (!subout_used[s][o])
                diag("SBD009", Severity::Warning, m.sub(s).loc,
                     "output '" + b.output_name(o) + "' of sub-block '" + m.sub(s).name +
                         in_block + " is connected to nothing");
    }
    for (std::size_t i = 0; i < m.num_inputs(); ++i)
        if (!input_used[i])
            diag("SBD010", Severity::Warning, m.def_loc(),
                 "input '" + m.input_name(i) + "' of block '" + m.type_name() + "' is unused");
}

/// SBD018: a function of a *combinational* extern block that writes no
/// output can never contribute anything — combinational blocks have no
/// state a call could advance.
void pass_extern(const OpaqueBlock& b, LintReport& rep) {
    if (b.block_class() != BlockClass::Combinational) return;
    for (const auto& fn : b.functions()) {
        if (!fn.writes.empty()) continue;
        const SourceLoc loc = fn.loc.valid() ? fn.loc : b.def_loc();
        rep.diagnostics.push_back(
            Diagnostic{"SBD018", Severity::Warning, loc,
                       "function '" + fn.name + "' of combinational extern block '" +
                           b.type_name() + "' writes no output: calls to it are inert",
                       {}});
    }
}

/// SBD012/SBD013 (+ SBD019/SBD020): bottom-up dependency analysis under the
/// configured clustering method, mirroring what compile_hierarchy would do
/// but recovering per block instead of throwing.
void pass_cycles(const text::ParsedFile& file, const LintOptions& opts, LintReport& rep) {
    std::unordered_map<const Block*, std::optional<codegen::Profile>> memo;

    const std::function<const codegen::Profile*(const BlockPtr&)> profile_of =
        [&](const BlockPtr& b) -> const codegen::Profile* {
        const auto it = memo.find(b.get());
        if (it != memo.end()) return it->second ? &*it->second : nullptr;
        std::optional<codegen::Profile> result;
        if (b->is_atomic()) {
            result = b->is_opaque()
                         ? codegen::opaque_profile(static_cast<const OpaqueBlock&>(*b))
                         : codegen::atomic_profile(static_cast<const AtomicBlock&>(*b));
        } else {
            const auto& m = static_cast<const MacroBlock&>(*b);
            std::vector<const codegen::Profile*> subs;
            subs.reserve(m.num_subs());
            bool ok = true;
            for (std::size_t s = 0; s < m.num_subs(); ++s) {
                const codegen::Profile* p = profile_of(m.sub(s).type);
                if (p == nullptr) ok = false;
                subs.push_back(p);
            }
            // Structurally broken blocks were reported by the connectivity
            // pass; blocks whose subs failed inherit the failure silently.
            if (ok) {
                try {
                    m.validate();
                } catch (const ModelError&) {
                    ok = false;
                }
            }
            if (ok) {
                bool cyclic = false;
                codegen::Sdg sdg = codegen::build_sdg_unchecked(m, subs, &cyclic);
                if (!cyclic) {
                    try {
                        const auto clustering = codegen::cluster(sdg, opts.method);
                        auto gen = codegen::generate_code(m, subs, sdg, clustering);
                        if (opts.check_contracts) {
                            for (const auto& f : codegen::check_profile_contract(
                                     m, subs, sdg, clustering, gen.profile))
                                rep.diagnostics.push_back(Diagnostic{
                                    f.fatal ? "SBD019" : "SBD020",
                                    f.fatal ? Severity::Error : Severity::Warning, m.def_loc(),
                                    f.message, {}});
                        }
                        result = std::move(gen.profile);
                    } catch (const resilience::BudgetExhausted& e) {
                        rep.diagnostics.push_back(
                            Diagnostic{"SBD021", Severity::Warning, m.def_loc(),
                                       "macro '" + m.type_name() +
                                           "': clustering abandoned under resource budget: " +
                                           e.what(),
                                       {}});
                    } catch (const std::exception& e) {
                        rep.diagnostics.push_back(
                            Diagnostic{"SBD019", Severity::Error, m.def_loc(),
                                       "macro '" + m.type_name() +
                                           "': code generation failed: " + e.what(),
                                       {}});
                    }
                } else {
                    std::string witness;
                    if (const auto cyc = sdg.graph.find_cycle()) {
                        for (const auto v : *cyc)
                            witness += codegen::node_label(sdg, m, subs, v) + " -> ";
                        witness += codegen::node_label(sdg, m, subs, cyc->front());
                    }
                    bool flat_acyclic = false;
                    try {
                        flat_acyclic = is_acyclic_diagram(m);
                    } catch (const ModelError&) {
                        // Pass-through cycles etc.: genuinely cyclic.
                    }
                    Diagnostic d;
                    d.severity = Severity::Error;
                    d.loc = m.def_loc();
                    if (flat_acyclic) {
                        d.code = "SBD013";
                        d.message = "false cycle: the flattened diagram of '" + m.type_name() +
                                    "' is acyclic, but its scheduling dependency graph under "
                                    "the '" +
                                    std::string(to_string(opts.method)) +
                                    "' method is cyclic (a sub-block profile exports a false "
                                    "input-output dependency)";
                        if (!witness.empty()) d.notes.push_back("cycle witness: " + witness);
                        std::string accept;
                        for (const Method alt : kAllMethods) {
                            bool accepts = false;
                            try {
                                codegen::PipelineOptions popts;
                                popts.method = alt;
                                codegen::Pipeline probe(std::move(popts), opts.cache);
                                (void)probe.compile(b);
                                accepts = true;
                            } catch (const std::exception&) {
                            }
                            if (accepts)
                                accept += (accept.empty() ? "" : ", ") +
                                          std::string(to_string(alt));
                        }
                        d.notes.push_back(
                            accept.empty()
                                ? "no clustering method accepts this diagram modularly; "
                                  "flatten it instead"
                                : "methods that accept this diagram: " + accept);
                    } else {
                        d.code = "SBD012";
                        d.message = "dependency cycle: macro '" + m.type_name() +
                                    "' has an instantaneous cyclic dependency; no clustering "
                                    "method can generate code for it";
                        if (!witness.empty()) d.notes.push_back("cycle witness: " + witness);
                    }
                    rep.diagnostics.push_back(std::move(d));
                }
            }
        }
        const auto [pos, inserted] = memo.emplace(b.get(), std::move(result));
        (void)inserted;
        return pos->second ? &*pos->second : nullptr;
    };

    for (const auto& name : file.order) (void)profile_of(file.blocks.at(name));
}

/// SBD022..SBD028: compile the root and run the interval abstract
/// interpreter over the generated code. Models that do not compile are
/// fully covered by the structural passes, so compile failures are
/// silently skipped here.
void pass_deep(const text::ParsedFile& file, const LintOptions& opts, LintReport& rep) {
    if (!file.root) return;
    codegen::CompiledSystem sys;
    try {
        codegen::PipelineOptions popts;
        popts.method = opts.method;
        popts.threads = opts.jobs > 0 ? opts.jobs : 1;
        codegen::Pipeline pipeline(std::move(popts), opts.cache);
        sys = pipeline.compile(file.root);
    } catch (const std::exception&) {
        return;
    }
    for (Diagnostic& d : deep_diagnostics(sys, file.root, opts.abs))
        rep.diagnostics.push_back(std::move(d));
}

} // namespace

LintReport lint_parsed(const text::ParsedFile& file, const LintOptions& opts,
                       std::string display_name) {
    LintReport rep;
    rep.file = std::move(display_name);
    pass_parse_issues(file, rep);
    for (const auto& name : file.order) {
        const BlockPtr& b = file.blocks.at(name);
        if (b->is_opaque())
            pass_extern(static_cast<const OpaqueBlock&>(*b), rep);
        else if (!b->is_atomic())
            pass_connectivity(static_cast<const MacroBlock&>(*b), rep);
    }
    pass_cycles(file, opts, rep);
    if (opts.deep) pass_deep(file, opts, rep);
    rep.sort();
    return rep;
}

std::optional<codegen::Method> method_directive(const std::string& text) {
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        const auto hash = line.find('#');
        if (hash == std::string::npos) continue;
        static const std::string key = "lint-method:";
        const auto pos = line.find(key, hash);
        if (pos == std::string::npos) continue;
        std::string name = line.substr(pos + key.size());
        const auto first = name.find_first_not_of(" \t");
        if (first == std::string::npos) continue;
        const auto last = name.find_last_not_of(" \t\r");
        name = name.substr(first, last - first + 1);
        for (const Method m : kAllMethods)
            if (name == to_string(m)) return m;
    }
    return std::nullopt;
}

bool deep_directive(const std::string& text) {
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        const auto hash = line.find('#');
        if (hash == std::string::npos) continue;
        auto rest = line.substr(hash + 1);
        const auto first = rest.find_first_not_of(" \t");
        if (first == std::string::npos) continue;
        const auto last = rest.find_last_not_of(" \t\r");
        if (rest.substr(first, last - first + 1) == "lint-deep") return true;
    }
    return false;
}

LintReport lint_string(const std::string& text, const LintOptions& opts,
                       std::string display_name) {
    LintOptions effective = opts;
    if (const auto m = method_directive(text)) effective.method = *m;
    if (deep_directive(text)) effective.deep = true;
    const auto file = text::parse_sbd_string(text, text::ParseMode::Lenient);
    return lint_parsed(file, effective, std::move(display_name));
}

LintReport lint_file(const std::string& path, const LintOptions& opts) {
    std::ifstream f(path);
    if (!f) throw ModelError("sbd-lint: cannot open '" + path + "'");
    std::ostringstream buf;
    buf << f.rdbuf();
    return lint_string(buf.str(), opts, path);
}

} // namespace sbd::analysis
