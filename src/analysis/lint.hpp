#ifndef SBD_ANALYSIS_LINT_HPP
#define SBD_ANALYSIS_LINT_HPP

#include <memory>
#include <optional>
#include <string>

#include "analysis/absint.hpp"
#include "analysis/diagnostics.hpp"
#include "core/pipeline.hpp"
#include "sbd/text_format.hpp"

namespace sbd::analysis {

/// Knobs of the lint driver.
struct LintOptions {
    /// Clustering method assumed when analyzing dependency cycles: a
    /// diagram may be accepted under one method and rejected under another
    /// (the false-cycle phenomenon, SBD013).
    codegen::Method method = codegen::Method::Dynamic;
    /// Re-check every generated profile against the modular compilation
    /// contract (SBD019/SBD020). Cheap; on by default.
    bool check_contracts = true;
    /// Optional shared profile cache: the SBD013 which-methods-accept
    /// probes compile the same sub-hierarchy under every method, so a
    /// shared (possibly disk-backed, see sbd-lint --cache-dir) cache makes
    /// repeated lint runs and multi-file batches largely incremental.
    std::shared_ptr<codegen::ProfileCache> cache;
    /// Deep semantic analysis (SBD022..SBD028): compile the model under
    /// `method` and run the interval abstract interpreter over the
    /// generated code. A "# lint-deep" comment directive in the model
    /// turns this on per file.
    bool deep = false;
    /// Knobs of the deep analysis; abs.memo may be shared across a batch
    /// so structurally identical blocks are summarized once.
    AbsOptions abs;
    /// Worker threads of the compilation pipeline used by the deep pass.
    std::size_t jobs = 1;
};

/// Runs every analysis pass over an already-parsed model. Passes:
///  1. recovered parse issues (SBD001..SBD006, SBD014..SBD017);
///  2. connectivity per macro block: unconnected sub inputs (SBD007) and
///     diagram outputs (SBD008), dangling sub outputs (SBD009), unused
///     diagram inputs (SBD010), dead sub-blocks (SBD011);
///  3. extern declarations: inert functions (SBD018);
///  4. bottom-up dependency analysis under `opts.method`: true cycles with
///     a concrete witness path (SBD012), false cycles with the witness and
///     the set of accepting methods (SBD013);
///  5. contract checking of each generated profile (SBD019, SBD020).
/// The returned report is sorted.
LintReport lint_parsed(const text::ParsedFile& file, const LintOptions& opts = {},
                       std::string display_name = "<model>");

/// Parses leniently, honours a "# lint-method: NAME" directive in the
/// text (it overrides opts.method), then runs lint_parsed.
LintReport lint_string(const std::string& text, const LintOptions& opts = {},
                       std::string display_name = "<string>");

/// As lint_string, reading from a file; throws ModelError if unreadable.
LintReport lint_file(const std::string& path, const LintOptions& opts = {});

/// The method named by a "# lint-method: NAME" comment directive, if any.
std::optional<codegen::Method> method_directive(const std::string& text);

/// True when the text carries a "# lint-deep" comment directive.
bool deep_directive(const std::string& text);

} // namespace sbd::analysis

#endif
