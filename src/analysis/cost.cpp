#include "analysis/cost.hpp"

#include <algorithm>
#include <sstream>

#include "core/emit_cpp.hpp"
#include "native/native.hpp"

namespace sbd::analysis {

namespace {

constexpr codegen::Method kMethods[] = {
    codegen::Method::Monolithic,  codegen::Method::StepGet,
    codegen::Method::Dynamic,     codegen::Method::DisjointSat,
    codegen::Method::DisjointGreedy, codegen::Method::Singletons,
};

MethodCost measure(const BlockPtr& root, codegen::Method method,
                   const std::shared_ptr<codegen::ProfileCache>& cache) {
    MethodCost mc;
    mc.method = to_string(method);
    codegen::CompiledSystem sys;
    try {
        codegen::PipelineOptions popts;
        popts.method = method;
        codegen::Pipeline pipeline(std::move(popts), cache);
        sys = pipeline.compile(root);
    } catch (const std::exception& e) {
        mc.reject_reason = e.what();
        return mc;
    }
    mc.accepted = true;
    for (const Block* b : sys.order()) {
        const codegen::CompiledBlock& cb = sys.at(*b);
        if (!cb.code) continue;
        BlockCost bc;
        bc.block = b->type_name();
        for (const codegen::GenFunction& fn : cb.code->functions) {
            FunctionCost fc;
            fc.name = fn.sig.name;
            fc.ops = codegen::count_ops(fn);
            bc.ops += fc.ops;
            bc.functions.push_back(std::move(fc));
        }
        bc.lines = cb.code->line_count();
        mc.functions += cb.code->functions.size();
        mc.ops += bc.ops;
        mc.lines += bc.lines;
        mc.blocks.push_back(std::move(bc));
    }
    try {
        // Measure the *actual* translation unit the native backend feeds
        // the compiler (emit_cpp plus the exported C shim), so this static
        // column and BENCH_native's measured tu_bytes agree byte-for-byte.
        mc.code_bytes = native::emit_native_module(sys).size();
        mc.code_kind = "c++";
    } catch (const std::exception&) {
        // Some atomic has no emit-time C++ semantics (opaque vendor blocks,
        // custom in-process atomics): measure the pseudocode instead.
        std::size_t bytes = 0;
        for (const Block* b : sys.order()) {
            const codegen::CompiledBlock& cb = sys.at(*b);
            if (cb.code) bytes += cb.code->to_pseudocode().size();
        }
        mc.code_bytes = bytes;
        mc.code_kind = "pseudocode";
    }
    return mc;
}

void json_escape_into(std::ostringstream& os, const std::string& s) {
    for (const char c : s) {
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        case '\r': os << "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

} // namespace

CostReport cost_report(const BlockPtr& root, const std::string& display_name,
                       std::shared_ptr<codegen::ProfileCache> cache) {
    CostReport report;
    report.file = display_name;
    report.model = root->type_name();
    for (const codegen::Method m : kMethods) report.methods.push_back(measure(root, m, cache));
    return report;
}

std::string render_cost_table(const CostReport& report) {
    std::ostringstream os;
    os << report.file << ": static cost of '" << report.model << "' per clustering method\n";
    const char* const hdr[] = {"method", "funcs", "calls", "assigns",
                               "guards", "bumps", "lines", "code bytes"};
    std::vector<std::vector<std::string>> rows;
    rows.emplace_back(hdr, hdr + 8);
    for (const MethodCost& mc : report.methods) {
        if (!mc.accepted) {
            rows.push_back({mc.method, "-", "-", "-", "-", "-", "-", "rejected"});
            continue;
        }
        rows.push_back({mc.method, std::to_string(mc.functions), std::to_string(mc.ops.calls),
                        std::to_string(mc.ops.assigns), std::to_string(mc.ops.guards),
                        std::to_string(mc.ops.bumps), std::to_string(mc.lines),
                        std::to_string(mc.code_bytes) + " (" + mc.code_kind + ")"});
    }
    std::vector<std::size_t> width(8, 0);
    for (const auto& row : rows)
        for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
    for (const auto& row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size()) os << std::string(width[c] - row[c].size() + 2, ' ');
        }
        os << "\n";
    }
    for (const MethodCost& mc : report.methods)
        if (!mc.accepted)
            os << "  " << mc.method << " rejected: " << mc.reject_reason << "\n";
    return os.str();
}

std::string render_cost_json(const CostReport& report) {
    std::ostringstream os;
    os << "{\"file\": \"";
    json_escape_into(os, report.file);
    os << "\", \"model\": \"";
    json_escape_into(os, report.model);
    os << "\", \"methods\": [";
    for (std::size_t i = 0; i < report.methods.size(); ++i) {
        const MethodCost& mc = report.methods[i];
        os << (i ? ", " : "") << "{\"method\": \"" << mc.method << "\", \"accepted\": "
           << (mc.accepted ? "true" : "false");
        if (!mc.accepted) {
            os << ", \"reject_reason\": \"";
            json_escape_into(os, mc.reject_reason);
            os << "\"}";
            continue;
        }
        os << ", \"functions\": " << mc.functions << ", \"calls\": " << mc.ops.calls
           << ", \"assigns\": " << mc.ops.assigns << ", \"guards\": " << mc.ops.guards
           << ", \"bumps\": " << mc.ops.bumps << ", \"lines\": " << mc.lines
           << ", \"code_bytes\": " << mc.code_bytes << ", \"code_kind\": \"" << mc.code_kind
           << "\", \"blocks\": [";
        for (std::size_t b = 0; b < mc.blocks.size(); ++b) {
            const BlockCost& bc = mc.blocks[b];
            os << (b ? ", " : "") << "{\"block\": \"";
            json_escape_into(os, bc.block);
            os << "\", \"lines\": " << bc.lines << ", \"functions\": [";
            for (std::size_t f = 0; f < bc.functions.size(); ++f) {
                const FunctionCost& fc = bc.functions[f];
                os << (f ? ", " : "") << "{\"name\": \"";
                json_escape_into(os, fc.name);
                os << "\", \"calls\": " << fc.ops.calls << ", \"assigns\": " << fc.ops.assigns
                   << ", \"guards\": " << fc.ops.guards << ", \"bumps\": " << fc.ops.bumps
                   << "}";
            }
            os << "]}";
        }
        os << "]}";
    }
    os << "]}";
    return os.str();
}

} // namespace sbd::analysis
