#include "core/profile.hpp"

#include <numeric>
#include <sstream>

namespace sbd::codegen {

std::int32_t Profile::writer_of_output(std::size_t o) const {
    for (std::size_t f = 0; f < functions.size(); ++f)
        for (const std::size_t w : functions[f].writes)
            if (w == o) return static_cast<std::int32_t>(f);
    return -1;
}

std::vector<std::size_t> Profile::readers_of_input(std::size_t i) const {
    std::vector<std::size_t> out;
    for (std::size_t f = 0; f < functions.size(); ++f)
        for (const std::size_t r : functions[f].reads)
            if (r == i) {
                out.push_back(f);
                break;
            }
    return out;
}

std::string Profile::to_string() const {
    std::ostringstream os;
    for (const auto& fn : functions) {
        os << fn.name << "(";
        for (std::size_t i = 0; i < fn.reads.size(); ++i)
            os << (i ? ", " : "") << "in" << fn.reads[i];
        os << ") -> (";
        for (std::size_t i = 0; i < fn.writes.size(); ++i)
            os << (i ? ", " : "") << "out" << fn.writes[i];
        os << ")\n";
    }
    for (const auto& [a, b] : pdg_edges)
        os << functions[a].name << " before " << functions[b].name << "\n";
    return os.str();
}

Profile atomic_profile(const AtomicBlock& block) {
    std::vector<std::size_t> all_in(block.num_inputs());
    std::iota(all_in.begin(), all_in.end(), 0);
    std::vector<std::size_t> all_out(block.num_outputs());
    std::iota(all_out.begin(), all_out.end(), 0);

    Profile p;
    switch (block.block_class()) {
    case BlockClass::Combinational:
        p.functions.push_back(InterfaceFunction{"step", all_in, all_out});
        p.sequential = false;
        break;
    case BlockClass::Sequential:
        p.functions.push_back(InterfaceFunction{"step", all_in, all_out});
        p.sequential = true;
        break;
    case BlockClass::MooreSequential:
        p.functions.push_back(InterfaceFunction{"get", {}, all_out});
        p.functions.push_back(InterfaceFunction{"step", all_in, {}});
        p.pdg_edges.emplace_back(0, 1); // get before step
        p.sequential = true;
        break;
    }
    return p;
}

Profile opaque_profile(const OpaqueBlock& block) {
    Profile p;
    for (const auto& fn : block.functions())
        p.functions.push_back(InterfaceFunction{fn.name, fn.reads, fn.writes});
    p.pdg_edges = block.order();
    p.sequential = block.block_class() != BlockClass::Combinational;
    return p;
}

} // namespace sbd::codegen
