#include "core/exec.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace sbd::codegen {

Instance::Instance(const CompiledSystem& sys, BlockPtr block)
    : sys_(&sys), block_(std::move(block)), compiled_(&sys.at(*block_)) {
    if (block_->is_opaque())
        throw std::logic_error("cannot execute interface-only (opaque) block '" +
                               block_->type_name() + "'");
    if (!block_->is_atomic()) {
        const auto& macro = static_cast<const MacroBlock&>(*block_);
        const CodeUnit& code = *compiled_->code;
        slots_.resize(code.num_slots, 0.0);
        counters_.resize(code.counter_mods.size(), 0);
        subs_.reserve(macro.num_subs());
        for (std::size_t s = 0; s < macro.num_subs(); ++s)
            subs_.push_back(std::make_unique<Instance>(sys, macro.sub(s).type));
    }
    // Precompute a PDG-consistent call order for step_instant().
    const Profile& p = compiled_->profile;
    graph::Digraph pdg(p.functions.size());
    for (const auto& [a, b] : p.pdg_edges)
        pdg.add_edge(static_cast<graph::NodeId>(a), static_cast<graph::NodeId>(b));
    const auto order = pdg.topological_order();
    assert(order.has_value());
    pdg_order_.assign(order->begin(), order->end());
    init();
}

void Instance::init() {
    if (block_->is_atomic()) {
        state_ = static_cast<const AtomicBlock&>(*block_).initial_state();
        return;
    }
    std::fill(slots_.begin(), slots_.end(), 0.0);
    std::fill(counters_.begin(), counters_.end(), 0);
    for (const auto& sub : subs_) sub->init();
}

std::vector<double> Instance::call(std::size_t fn, std::span<const double> args) {
    const InterfaceFunction& sig = compiled_->profile.functions.at(fn);
    if (args.size() != sig.reads.size())
        throw std::invalid_argument("Instance::call: wrong argument count for " + sig.name);
    return block_->is_atomic() ? call_atomic(fn, args) : call_macro(fn, args);
}

std::vector<double> Instance::call_atomic(std::size_t fn, std::span<const double> args) {
    const auto& atomic = static_cast<const AtomicBlock&>(*block_);
    switch (atomic.block_class()) {
    case BlockClass::Combinational: {
        std::vector<double> out(atomic.num_outputs());
        atomic.compute_outputs(state_, args, out);
        return out;
    }
    case BlockClass::Sequential: {
        std::vector<double> out(atomic.num_outputs());
        atomic.compute_outputs(state_, args, out);
        atomic.update_state(state_, args);
        return out;
    }
    case BlockClass::MooreSequential:
        if (fn == 0) { // get(): outputs from state only
            std::vector<double> out(atomic.num_outputs());
            atomic.compute_outputs(state_, {}, out);
            return out;
        }
        atomic.update_state(state_, args); // step(): state update
        return {};
    }
    return {};
}

std::vector<double> Instance::call_macro(std::size_t fn, std::span<const double> args) {
    const GenFunction& gen = compiled_->code->functions[fn];
    const auto& reads = gen.sig.reads;
    const auto value = [&](const ValueRef& v) -> double {
        if (v.kind == ValueRef::Kind::Slot) return slots_[v.index];
        // Param: position of the input port within this function's reads.
        const auto it = std::lower_bound(reads.begin(), reads.end(),
                                         static_cast<std::size_t>(v.index));
        assert(it != reads.end() && *it == static_cast<std::size_t>(v.index));
        return args[static_cast<std::size_t>(it - reads.begin())];
    };

    std::vector<double> call_args;
    for (std::size_t idx = 0; idx < gen.body.size(); ++idx) {
        const Stmt& s = gen.body[idx];
        if (const auto* gb = std::get_if<GuardBegin>(&s)) {
            if (counters_[gb->counter] != 0) {
                // Skip to the matching GuardEnd (guards never nest).
                while (!std::holds_alternative<GuardEnd>(gen.body[idx])) ++idx;
            }
            continue;
        }
        if (std::holds_alternative<GuardEnd>(s)) continue;
        if (const auto* bump = std::get_if<BumpStmt>(&s)) {
            counters_[bump->counter] = (counters_[bump->counter] + 1) % bump->mod;
            continue;
        }
        if (const auto* assign = std::get_if<AssignStmt>(&s)) {
            slots_[assign->dst_slot] = value(assign->src);
            continue;
        }
        const auto& call = std::get<CallStmt>(s);
        if (call.trigger && value(*call.trigger) < 0.5)
            continue; // hold: result slots keep their previous values
        call_args.clear();
        for (const ValueRef& a : call.args) call_args.push_back(value(a));
        const std::vector<double> results =
            subs_[call.sub]->call(static_cast<std::size_t>(call.fn), call_args);
        assert(results.size() == call.results.size());
        for (std::size_t r = 0; r < results.size(); ++r) slots_[call.results[r]] = results[r];
    }

    std::vector<double> out;
    out.reserve(gen.returns.size());
    for (const ValueRef& r : gen.returns) out.push_back(value(r));
    return out;
}

std::vector<double> Instance::step_instant(std::span<const double> inputs) {
    return step_instant_ordered(inputs, pdg_order_);
}

std::vector<double> Instance::step_instant_ordered(std::span<const double> inputs,
                                                   std::span<const std::size_t> order) {
    const Profile& p = compiled_->profile;
    if (inputs.size() != block_->num_inputs())
        throw std::invalid_argument("step_instant: wrong number of inputs");
    if (order.size() != p.functions.size())
        throw std::invalid_argument("step_instant: order must cover all interface functions");
    // Check the order against the PDG.
    std::vector<std::size_t> pos(p.functions.size());
    for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
    for (const auto& [a, b] : p.pdg_edges)
        if (pos[a] >= pos[b])
            throw std::invalid_argument("step_instant: call order violates the PDG");

    std::vector<double> outputs(block_->num_outputs(), 0.0);
    std::vector<double> args;
    for (const std::size_t f : order) {
        const InterfaceFunction& sig = p.functions[f];
        args.clear();
        for (const std::size_t port : sig.reads) args.push_back(inputs[port]);
        const std::vector<double> res = call(f, args);
        for (std::size_t w = 0; w < sig.writes.size(); ++w) outputs[sig.writes[w]] = res[w];
    }
    return outputs;
}

} // namespace sbd::codegen
