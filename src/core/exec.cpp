#include "core/exec.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <stdexcept>

namespace sbd::codegen {

// ---------------------------------------------------------------------------
// Instance: backend-neutral validation and the generic call plumbing.

Instance::Instance(const CompiledSystem& sys, BlockPtr block)
    : sys_(&sys), block_(std::move(block)), compiled_(&sys.at(*block_)) {
    if (block_->is_opaque())
        throw std::logic_error("cannot execute interface-only (opaque) block '" +
                               block_->type_name() + "'");
}

std::size_t Instance::results_size(std::size_t fn) const {
    return compiled_->profile.functions.at(fn).writes.size();
}

std::vector<double> Instance::call(std::size_t fn, std::span<const double> args) {
    std::vector<double> results(results_size(fn));
    call_into(fn, args, results);
    return results;
}

void Instance::call_into(std::size_t fn, std::span<const double> args,
                         std::span<double> results) {
    const InterfaceFunction& sig = compiled_->profile.functions.at(fn);
    if (args.size() != sig.reads.size())
        throw std::invalid_argument("Instance::call: wrong argument count for " + sig.name);
    if (results.size() != sig.writes.size())
        throw std::invalid_argument("Instance::call: wrong result count for " + sig.name);
    do_call_into(fn, args, results);
}

std::vector<double> Instance::step_instant(std::span<const double> inputs) {
    std::vector<double> outputs(block_->num_outputs(), 0.0);
    step_instant_into(inputs, outputs);
    return outputs;
}

void Instance::step_instant_into(std::span<const double> inputs, std::span<double> outputs) {
    if (inputs.size() != block_->num_inputs())
        throw std::invalid_argument("step_instant: wrong number of inputs");
    if (outputs.size() != block_->num_outputs())
        throw std::invalid_argument("step_instant: wrong number of outputs");
    do_step_instant_into(inputs, outputs);
}

std::vector<double> Instance::step_instant_ordered(std::span<const double> inputs,
                                                   std::span<const std::size_t> order) {
    const Profile& p = compiled_->profile;
    if (inputs.size() != block_->num_inputs())
        throw std::invalid_argument("step_instant: wrong number of inputs");
    if (order.size() != p.functions.size())
        throw std::invalid_argument("step_instant: order must cover all interface functions");
    // Check the order against the PDG.
    std::vector<std::size_t> pos(p.functions.size());
    for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
    for (const auto& [a, b] : p.pdg_edges)
        if (pos[a] >= pos[b])
            throw std::invalid_argument("step_instant: call order violates the PDG");

    std::vector<double> outputs(block_->num_outputs(), 0.0);
    std::vector<double> args;
    for (const std::size_t f : order) {
        const InterfaceFunction& sig = p.functions[f];
        args.clear();
        for (const std::size_t port : sig.reads) args.push_back(inputs[port]);
        const std::vector<double> res = call(f, args);
        for (std::size_t w = 0; w < sig.writes.size(); ++w) outputs[sig.writes[w]] = res[w];
    }
    return outputs;
}

void Instance::save_state(std::vector<double>& out) const { do_save_state(out); }

std::size_t Instance::restore_state(std::span<const double> in) {
    const std::size_t n = state_size();
    if (in.size() < n)
        throw std::invalid_argument("Instance::restore_state: state blob too short");
    do_restore_state(in.first(n));
    return n;
}

// ---------------------------------------------------------------------------
// InterpInstance: the IR interpreter.

InterpInstance::InterpInstance(const CompiledSystem& sys, BlockPtr block)
    : Instance(sys, std::move(block)) {
    std::size_t max_call_args = 0;
    std::size_t max_call_results = 0;
    if (!block_->is_atomic()) {
        const auto& macro = static_cast<const MacroBlock&>(*block_);
        const CodeUnit& code = *compiled_->code;
        slots_.resize(code.num_slots, 0.0);
        counters_.resize(code.counter_mods.size(), 0);
        subs_.reserve(macro.num_subs());
        for (std::size_t s = 0; s < macro.num_subs(); ++s)
            subs_.push_back(std::make_unique<InterpInstance>(sys, macro.sub(s).type));
        for (const GenFunction& gen : code.functions)
            for (const Stmt& s : gen.body)
                if (const auto* call = std::get_if<CallStmt>(&s)) {
                    max_call_args = std::max(max_call_args, call->args.size());
                    max_call_results = std::max(max_call_results, call->results.size());
                }
    }
    // Precompute a PDG-consistent call order for step_instant().
    const Profile& p = compiled_->profile;
    graph::Digraph pdg(p.functions.size());
    for (const auto& [a, b] : p.pdg_edges)
        pdg.add_edge(static_cast<graph::NodeId>(a), static_cast<graph::NodeId>(b));
    const auto order = pdg.topological_order();
    assert(order.has_value());
    pdg_order_.assign(order->begin(), order->end());
    // Size every scratch buffer once so that call_into()/step_instant_into()
    // never allocate: vectors keep their capacity across the resize() calls
    // in the hot path below.
    std::size_t max_fn_reads = 0;
    std::size_t max_fn_writes = 0;
    for (const InterfaceFunction& f : p.functions) {
        max_fn_reads = std::max(max_fn_reads, f.reads.size());
        max_fn_writes = std::max(max_fn_writes, f.writes.size());
    }
    scratch_args_.reserve(max_call_args);
    scratch_results_.reserve(std::max(max_call_results, block_->num_outputs()));
    step_args_.reserve(max_fn_reads);
    step_results_.reserve(std::max(max_fn_writes, block_->num_outputs()));
    do_init();
}

void InterpInstance::do_init() {
    if (block_->is_atomic()) {
        state_ = static_cast<const AtomicBlock&>(*block_).initial_state();
        return;
    }
    std::fill(slots_.begin(), slots_.end(), 0.0);
    std::fill(counters_.begin(), counters_.end(), 0);
    for (const auto& sub : subs_) sub->do_init();
}

std::size_t InterpInstance::do_state_size() const {
    std::size_t n = state_.size() + slots_.size() + counters_.size();
    for (const auto& sub : subs_) n += sub->do_state_size();
    return n;
}

void InterpInstance::do_save_state(std::vector<double>& out) const {
    out.insert(out.end(), state_.begin(), state_.end());
    out.insert(out.end(), slots_.begin(), slots_.end());
    for (const std::int32_t c : counters_) out.push_back(static_cast<double>(c));
    for (const auto& sub : subs_) sub->do_save_state(out);
}

void InterpInstance::do_restore_state(std::span<const double> in) {
    std::size_t at = 0;
    for (double& v : state_) v = in[at++];
    for (double& v : slots_) v = in[at++];
    for (std::int32_t& c : counters_) c = static_cast<std::int32_t>(in[at++]);
    for (const auto& sub : subs_) {
        const std::size_t n = sub->do_state_size();
        sub->do_restore_state(in.subspan(at, n));
        at += n;
    }
}

void InterpInstance::do_call_into(std::size_t fn, std::span<const double> args,
                                  std::span<double> results) {
    if (block_->is_atomic())
        call_atomic_into(fn, args, results);
    else
        call_macro_into(fn, args, results);
}

void InterpInstance::call_atomic_into(std::size_t fn, std::span<const double> args,
                                      std::span<double> results) {
    const auto& atomic = static_cast<const AtomicBlock&>(*block_);
    switch (atomic.block_class()) {
    case BlockClass::Combinational:
        atomic.compute_outputs(state_, args, results);
        return;
    case BlockClass::Sequential:
        atomic.compute_outputs(state_, args, results);
        atomic.update_state(state_, args);
        return;
    case BlockClass::MooreSequential:
        if (fn == 0) { // get(): outputs from state only
            atomic.compute_outputs(state_, {}, results);
            return;
        }
        atomic.update_state(state_, args); // step(): state update
        return;
    }
}

void InterpInstance::call_macro_into(std::size_t fn, std::span<const double> args,
                                     std::span<double> results) {
    const GenFunction& gen = compiled_->code->functions[fn];
    const auto& reads = gen.sig.reads;
    const auto value = [&](const ValueRef& v) -> double {
        if (v.kind == ValueRef::Kind::Slot) return slots_[v.index];
        // Param: position of the input port within this function's reads.
        const auto it = std::lower_bound(reads.begin(), reads.end(),
                                         static_cast<std::size_t>(v.index));
        assert(it != reads.end() && *it == static_cast<std::size_t>(v.index));
        return args[static_cast<std::size_t>(it - reads.begin())];
    };

    for (std::size_t idx = 0; idx < gen.body.size(); ++idx) {
        const Stmt& s = gen.body[idx];
        if (const auto* gb = std::get_if<GuardBegin>(&s)) {
            if (counters_[gb->counter] != 0) {
                // Skip to the matching GuardEnd (guards never nest).
                while (!std::holds_alternative<GuardEnd>(gen.body[idx])) ++idx;
            }
            continue;
        }
        if (std::holds_alternative<GuardEnd>(s)) continue;
        if (const auto* bump = std::get_if<BumpStmt>(&s)) {
            counters_[bump->counter] = (counters_[bump->counter] + 1) % bump->mod;
            continue;
        }
        if (const auto* assign = std::get_if<AssignStmt>(&s)) {
            slots_[assign->dst_slot] = value(assign->src);
            continue;
        }
        const auto& call = std::get<CallStmt>(s);
        if (call.trigger && value(*call.trigger) < 0.5)
            continue; // hold: result slots keep their previous values
        scratch_args_.clear();
        for (const ValueRef& a : call.args) scratch_args_.push_back(value(a));
        scratch_results_.resize(call.results.size());
        subs_[call.sub]->call_into(static_cast<std::size_t>(call.fn), scratch_args_,
                                   scratch_results_);
        for (std::size_t r = 0; r < call.results.size(); ++r)
            slots_[call.results[r]] = scratch_results_[r];
    }

    assert(results.size() == gen.returns.size());
    for (std::size_t r = 0; r < gen.returns.size(); ++r) results[r] = value(gen.returns[r]);
}

void InterpInstance::do_step_instant_into(std::span<const double> inputs,
                                          std::span<double> outputs) {
    const Profile& p = compiled_->profile;
    std::fill(outputs.begin(), outputs.end(), 0.0);
    for (const std::size_t f : pdg_order_) {
        const InterfaceFunction& sig = p.functions[f];
        step_args_.clear();
        for (const std::size_t port : sig.reads) step_args_.push_back(inputs[port]);
        step_results_.resize(sig.writes.size());
        call_into(f, step_args_, step_results_);
        for (std::size_t w = 0; w < sig.writes.size(); ++w)
            outputs[sig.writes[w]] = step_results_[w];
    }
}

// ---------------------------------------------------------------------------
// Backend selection.

const char* to_string(Backend b) {
    switch (b) {
    case Backend::Interp: return "interp";
    case Backend::Native: return "native";
    }
    return "?";
}

namespace {

class InterpExecutable final : public Executable {
public:
    InterpExecutable(const CompiledSystem& sys, BlockPtr root)
        : Executable(sys, std::move(root)) {}

    std::unique_ptr<Instance> instantiate() const override {
        return std::make_unique<InterpInstance>(*sys_, root_);
    }
    const char* backend_name() const override { return "interp"; }
};

std::atomic<NativeBackendFactory> g_native_factory{nullptr};

} // namespace

void register_native_backend(NativeBackendFactory factory) { g_native_factory = factory; }

bool native_backend_available() { return g_native_factory.load() != nullptr; }

std::shared_ptr<const Executable> make_executable(const CompiledSystem& sys, BlockPtr root,
                                                  const BackendConfig& cfg) {
    switch (cfg.backend) {
    case Backend::Interp:
        return std::make_shared<InterpExecutable>(sys, std::move(root));
    case Backend::Native: {
        const NativeBackendFactory f = g_native_factory.load();
        if (f == nullptr)
            throw BackendError(BackendError::Code::Unavailable,
                               "native backend is not linked into this binary "
                               "(call sbd::native::install())");
        return f(sys, std::move(root), cfg);
    }
    }
    throw std::logic_error("make_executable: unknown backend");
}

} // namespace sbd::codegen
