#ifndef SBD_CORE_EMIT_CPP_HPP
#define SBD_CORE_EMIT_CPP_HPP

#include <cstdint>
#include <string>

#include "core/compiler.hpp"

namespace sbd::codegen {

/// Emits a self-contained C++17 translation unit implementing every block
/// type reachable from the compiled system's root, one class per type, in
/// namespace `gen`. Macro-block classes are the generated modular code
/// (interface functions + persistent slots + guard counters + init());
/// atomic-block classes are emitted from their CppSemantics bodies.
///
/// Throws std::runtime_error if some atomic block lacks CppSemantics.
std::string emit_cpp(const CompiledSystem& sys);

/// Emits a main() that instantiates the root block, drives it for `steps`
/// synchronous instants with a deterministic LCG input sequence (see
/// lcg_input_trace for the host-side twin) and prints every output with
/// %.17g, one value per line. Combined with emit_cpp this yields an
/// executable used by the end-to-end tests: generated C++ is compiled with
/// the system compiler and its output compared against the interpreted
/// generated code and the reference simulator.
std::string emit_cpp_driver(const CompiledSystem& sys, std::size_t steps, std::uint64_t seed);

/// The C++ class name emit_cpp assigned to `block` (namespace `gen` not
/// included). Deterministic: rebuilds the same name table from the same
/// visit order, so callers can reference emitted classes — the native
/// backend's ABI shim instantiates the root class by this name.
std::string emit_cpp_class_name(const CompiledSystem& sys, const Block& block);

/// The host-side twin of the emitted driver's input generator: input values
/// for `steps` instants of a block with `num_inputs` ports.
std::vector<std::vector<double>> lcg_input_trace(std::size_t num_inputs, std::size_t steps,
                                                 std::uint64_t seed);

} // namespace sbd::codegen

#endif
