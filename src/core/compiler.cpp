#include "core/compiler.hpp"

#include <stdexcept>

#include "core/pipeline.hpp"

namespace sbd::codegen {

const CompiledBlock& CompiledSystem::at(const Block& b) const {
    const auto it = blocks_.find(&b);
    if (it == blocks_.end())
        throw std::out_of_range("CompiledSystem: block '" + b.type_name() + "' not compiled");
    return it->second;
}

std::size_t CompiledSystem::total_lines() const {
    std::size_t n = 0;
    for (const auto* b : order_) {
        const auto& cb = blocks_.at(b);
        if (cb.code) n += cb.code->line_count();
    }
    return n;
}

std::size_t CompiledSystem::total_replication() const {
    std::size_t n = 0;
    for (const auto* b : order_) {
        const auto& cb = blocks_.at(b);
        if (cb.sdg && cb.clustering) n += cb.clustering->replicated_nodes(*cb.sdg);
    }
    return n;
}

std::size_t CompiledSystem::total_functions() const {
    std::size_t n = 0;
    for (const auto* b : order_) {
        const auto& cb = blocks_.at(b);
        if (cb.code) n += cb.code->functions.size();
    }
    return n;
}

CompiledSystem compile_hierarchy(BlockPtr root, Method method, const ClusterOptions& opts,
                                 SatClusterStats* sat_stats) {
    // Serial single-shot front-end of the pipeline: one worker thread, a
    // fresh per-call in-memory cache, no disk store. Deduplication of shared
    // block types (previously the `done` map of the recursion) now falls out
    // of the content-addressed cache.
    PipelineOptions popts;
    popts.method = method;
    popts.cluster = opts;
    popts.threads = 1;
    Pipeline pipeline(std::move(popts));
    return pipeline.compile(std::move(root), sat_stats);
}

} // namespace sbd::codegen
