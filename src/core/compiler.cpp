#include "core/compiler.hpp"

#include <stdexcept>

#include "core/contract.hpp"

namespace sbd::codegen {

const CompiledBlock& CompiledSystem::at(const Block& b) const {
    const auto it = blocks_.find(&b);
    if (it == blocks_.end())
        throw std::out_of_range("CompiledSystem: block '" + b.type_name() + "' not compiled");
    return it->second;
}

std::size_t CompiledSystem::total_lines() const {
    std::size_t n = 0;
    for (const auto* b : order_) {
        const auto& cb = blocks_.at(b);
        if (cb.code) n += cb.code->line_count();
    }
    return n;
}

std::size_t CompiledSystem::total_replication() const {
    std::size_t n = 0;
    for (const auto* b : order_) {
        const auto& cb = blocks_.at(b);
        if (cb.sdg && cb.clustering) n += cb.clustering->replicated_nodes(*cb.sdg);
    }
    return n;
}

std::size_t CompiledSystem::total_functions() const {
    std::size_t n = 0;
    for (const auto* b : order_) {
        const auto& cb = blocks_.at(b);
        if (cb.code) n += cb.code->functions.size();
    }
    return n;
}

namespace {

void compile_rec(const BlockPtr& block, Method method, const ClusterOptions& opts,
                 SatClusterStats* sat_stats,
                 std::unordered_map<const Block*, CompiledBlock>& done,
                 std::vector<const Block*>& order) {
    if (done.contains(block.get())) return;
    if (block->is_atomic()) {
        CompiledBlock cb;
        cb.block = block;
        cb.profile = block->is_opaque()
                         ? opaque_profile(static_cast<const OpaqueBlock&>(*block))
                         : atomic_profile(static_cast<const AtomicBlock&>(*block));
        done.emplace(block.get(), std::move(cb));
        order.push_back(block.get());
        return;
    }
    const auto& macro = static_cast<const MacroBlock&>(*block);
    for (std::size_t s = 0; s < macro.num_subs(); ++s)
        compile_rec(macro.sub(s).type, method, opts, sat_stats, done, order);

    // Modular code generation proper: the only information used about each
    // sub-block is its exported profile.
    std::vector<const Profile*> sub_profiles;
    sub_profiles.reserve(macro.num_subs());
    for (std::size_t s = 0; s < macro.num_subs(); ++s)
        sub_profiles.push_back(&done.at(macro.sub(s).type.get()).profile);

    CompiledBlock cb;
    cb.block = block;
    cb.sdg = build_sdg(macro, sub_profiles);
    cb.clustering = cluster(*cb.sdg, method, opts, sat_stats);
    auto gen = generate_code(macro, sub_profiles, *cb.sdg, *cb.clustering);
    cb.code = std::move(gen.code);
    cb.profile = std::move(gen.profile);
    if (opts.verify_contracts) {
        const auto findings =
            check_profile_contract(macro, sub_profiles, *cb.sdg, *cb.clustering, cb.profile);
        if (any_fatal(findings)) {
            std::string msg = "contract violation in generated profile:";
            for (const auto& f : findings)
                if (f.fatal) msg += "\n  [" + std::string(to_string(f.kind)) + "] " + f.message;
            throw std::logic_error(msg);
        }
    }
    done.emplace(block.get(), std::move(cb));
    order.push_back(block.get());
}

} // namespace

CompiledSystem compile_hierarchy(BlockPtr root, Method method, const ClusterOptions& opts,
                                 SatClusterStats* sat_stats) {
    if (!root) throw std::invalid_argument("compile_hierarchy: null root");
    CompiledSystem sys;
    sys.root_ = root;
    compile_rec(root, method, opts, sat_stats, sys.blocks_, sys.order_);
    return sys;
}

} // namespace sbd::codegen
