#include "core/clustering.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

namespace sbd::codegen {

const char* to_string(Method m) {
    switch (m) {
    case Method::Monolithic: return "monolithic";
    case Method::StepGet: return "step-get";
    case Method::Dynamic: return "dynamic";
    case Method::DisjointSat: return "disjoint-sat";
    case Method::DisjointGreedy: return "disjoint-greedy";
    case Method::Singletons: return "singletons";
    }
    return "?";
}

bool Clustering::is_partition(const Sdg& sdg) const {
    std::vector<int> count(sdg.graph.num_nodes(), 0);
    for (const auto& cl : clusters)
        for (const auto v : cl) ++count[v];
    for (const auto v : sdg.internal_nodes)
        if (count[v] != 1) return false;
    return true;
}

std::size_t Clustering::replicated_nodes(const Sdg& sdg) const {
    std::vector<int> count(sdg.graph.num_nodes(), 0);
    for (const auto& cl : clusters)
        for (const auto v : cl) ++count[v];
    std::size_t extra = 0;
    for (const auto v : sdg.internal_nodes)
        if (count[v] > 1) extra += static_cast<std::size_t>(count[v] - 1);
    return extra;
}

std::vector<std::size_t> Clustering::clusters_of(graph::NodeId v) const {
    std::vector<std::size_t> out;
    for (std::size_t c = 0; c < clusters.size(); ++c)
        if (std::binary_search(clusters[c].begin(), clusters[c].end(), v)) out.push_back(c);
    return out;
}

std::vector<std::vector<std::size_t>> Clustering::output_attribution(const Sdg& sdg) const {
    // Per-cluster input cone (inputs reaching any member node), used to pick
    // the cheapest-to-call function among those containing a shared writer.
    std::vector<graph::Bitset> cluster_in(clusters.size(), graph::Bitset(sdg.num_inputs()));
    std::vector<graph::Bitset> reaches(sdg.num_inputs());
    for (std::size_t i = 0; i < sdg.num_inputs(); ++i)
        reaches[i] = sdg.graph.reachable_from(sdg.input_nodes[i]);
    for (std::size_t c = 0; c < clusters.size(); ++c)
        for (const auto v : clusters[c])
            for (std::size_t i = 0; i < sdg.num_inputs(); ++i)
                if (reaches[i].test(v)) cluster_in[c].set(i);

    std::vector<std::vector<std::size_t>> attribution(sdg.num_outputs());
    for (std::size_t o = 0; o < sdg.num_outputs(); ++o) {
        for (const auto w : sdg.graph.predecessors(sdg.output_nodes[o])) {
            // Among clusters containing this writer, pick the cheapest one.
            std::size_t best = static_cast<std::size_t>(-1);
            for (const std::size_t c : clusters_of(w))
                if (best == static_cast<std::size_t>(-1) ||
                    cluster_in[c].count() < cluster_in[best].count())
                    best = c;
            if (best != static_cast<std::size_t>(-1)) attribution[o].push_back(best);
        }
        std::sort(attribution[o].begin(), attribution[o].end());
        attribution[o].erase(std::unique(attribution[o].begin(), attribution[o].end()),
                             attribution[o].end());
    }
    return attribution;
}

std::vector<std::pair<std::size_t, std::size_t>> cluster_pdg_edges(const Sdg& sdg,
                                                                   const Clustering& c) {
    // membership[v] = sorted cluster list per node.
    std::vector<std::vector<std::size_t>> membership(sdg.graph.num_nodes());
    for (std::size_t k = 0; k < c.clusters.size(); ++k)
        for (const auto v : c.clusters[k]) membership[v].push_back(k);

    std::set<std::pair<std::size_t, std::size_t>> edges;
    for (const auto u : sdg.internal_nodes) {
        for (const auto v : sdg.graph.successors(u)) {
            if (!sdg.is_internal(v)) continue;
            const auto& cu = membership[u];
            const auto& cv = membership[v];
            // a -> b for a in clusters(u)\clusters(v), b in clusters(v)\clusters(u):
            // shared nodes execute under guards inside whichever function runs
            // first, so they impose no cross-function ordering.
            for (const std::size_t a : cu) {
                if (std::binary_search(cv.begin(), cv.end(), a)) continue;
                for (const std::size_t b : cv) {
                    if (std::binary_search(cu.begin(), cu.end(), b)) continue;
                    edges.emplace(a, b);
                }
            }
        }
    }
    return {edges.begin(), edges.end()};
}

std::vector<std::pair<std::size_t, std::size_t>> exported_io_dependencies(const Sdg& sdg,
                                                                          const Clustering& c) {
    const std::size_t k = c.clusters.size();
    const std::size_t nin = sdg.num_inputs();
    const std::size_t nout = sdg.num_outputs();
    // Profile-level graph: cluster nodes, then inputs, then outputs.
    graph::Digraph g(k + nin + nout);
    const auto in_node = [&](std::size_t i) { return static_cast<graph::NodeId>(k + i); };
    const auto out_node = [&](std::size_t o) { return static_cast<graph::NodeId>(k + nin + o); };

    std::vector<std::vector<std::size_t>> membership(sdg.graph.num_nodes());
    for (std::size_t ci = 0; ci < k; ++ci)
        for (const auto v : c.clusters[ci]) membership[v].push_back(ci);

    for (std::size_t i = 0; i < nin; ++i)
        for (const auto v : sdg.graph.successors(sdg.input_nodes[i]))
            for (const std::size_t ci : membership[v])
                g.add_edge(in_node(i), static_cast<graph::NodeId>(ci));
    // Output-side edges reflect the profile: an output is returned by the
    // attributed cluster(s) of its writer(s), not by every cluster that
    // happens to contain a (shared) writer.
    const auto attribution = c.output_attribution(sdg);
    for (std::size_t o = 0; o < nout; ++o)
        for (const std::size_t ci : attribution[o])
            g.add_edge(static_cast<graph::NodeId>(ci), out_node(o));
    for (const auto& [a, b] : cluster_pdg_edges(sdg, c))
        g.add_edge(static_cast<graph::NodeId>(a), static_cast<graph::NodeId>(b));

    std::vector<std::pair<std::size_t, std::size_t>> deps;
    for (std::size_t i = 0; i < nin; ++i) {
        const auto reach = g.reachable_from(in_node(i));
        for (std::size_t o = 0; o < nout; ++o)
            if (reach.test(out_node(o))) deps.emplace_back(i, o);
    }
    return deps;
}

std::vector<std::pair<std::size_t, std::size_t>> false_io_dependencies(const Sdg& sdg,
                                                                       const Clustering& c) {
    const auto true_deps = sdg.io_dependencies();
    const std::set<std::pair<std::size_t, std::size_t>> truth(true_deps.begin(), true_deps.end());
    std::vector<std::pair<std::size_t, std::size_t>> added;
    for (const auto& d : exported_io_dependencies(sdg, c))
        if (!truth.contains(d)) added.push_back(d);
    return added;
}

ValidityReport check_validity(const Sdg& sdg, const Clustering& c) {
    ValidityReport r;
    r.partition = c.is_partition(sdg);
    r.false_io_pairs = false_io_dependencies(sdg, c);
    r.no_false_io = r.false_io_pairs.empty();
    // Condition 3: acyclicity of the cluster relation (self-loops dropped by
    // construction of cluster_pdg_edges).
    graph::Digraph q(c.clusters.size());
    for (const auto& [a, b] : cluster_pdg_edges(sdg, c))
        q.add_edge(static_cast<graph::NodeId>(a), static_cast<graph::NodeId>(b));
    r.acyclic = q.is_acyclic();
    return r;
}

namespace {

/// Per-internal-node input and output cones, plus the input->output truth
/// table, used by the O(1)-per-pair mergeability test.
struct Cones {
    std::vector<graph::Bitset> in_of;   ///< per node: inputs (by port) reaching it
    std::vector<graph::Bitset> out_of;  ///< per node: outputs (by port) it reaches
    std::vector<graph::Bitset> io;      ///< per input port: outputs it reaches
};

Cones compute_cones(const Sdg& sdg) {
    Cones c;
    const std::size_t n = sdg.graph.num_nodes();
    const std::size_t nin = sdg.num_inputs();
    const std::size_t nout = sdg.num_outputs();
    c.in_of.assign(n, graph::Bitset(nin));
    c.out_of.assign(n, graph::Bitset(nout));
    c.io.assign(nin, graph::Bitset(nout));
    for (std::size_t i = 0; i < nin; ++i) {
        const auto reach = sdg.graph.reachable_from(sdg.input_nodes[i]);
        for (std::size_t v = 0; v < n; ++v)
            if (reach.test(v)) c.in_of[v].set(i);
        for (std::size_t o = 0; o < nout; ++o)
            if (reach.test(sdg.output_nodes[o])) c.io[i].set(o);
    }
    for (std::size_t o = 0; o < nout; ++o) {
        const auto reaching = sdg.graph.reaching_to(sdg.output_nodes[o]);
        for (std::size_t v = 0; v < n; ++v)
            if (reaching.test(v)) c.out_of[v].set(o);
    }
    return c;
}

bool mergeable_with_cones(const Cones& cones, graph::NodeId u, graph::NodeId v) {
    // Merging u and v is almost valid iff every (input, output) pair in
    // (In(u) u In(v)) x (Out(u) u Out(v)) is already a true dependency.
    graph::Bitset in_union = cones.in_of[u];
    in_union |= cones.in_of[v];
    graph::Bitset out_union = cones.out_of[u];
    out_union |= cones.out_of[v];
    for (const std::size_t i : in_union.to_indices())
        if (!out_union.is_subset_of(cones.io[i])) return false;
    return true;
}

} // namespace

bool mergeable(const Sdg& sdg, graph::NodeId u, graph::NodeId v) {
    const Cones cones = compute_cones(sdg);
    return mergeable_with_cones(cones, u, v);
}

graph::Undirected mergeability_graph(const Sdg& sdg) {
    const Cones cones = compute_cones(sdg);
    const std::size_t n = sdg.internal_nodes.size();
    graph::Undirected m(n);
    for (std::size_t a = 0; a < n; ++a)
        for (std::size_t b = a + 1; b < n; ++b)
            if (mergeable_with_cones(cones, sdg.internal_nodes[a], sdg.internal_nodes[b]))
                m.add_edge(a, b);
    return m;
}

Clustering brute_force_optimal_disjoint(const Sdg& sdg) {
    const std::size_t n = sdg.internal_nodes.size();
    if (n > 12)
        throw std::invalid_argument("brute_force_optimal_disjoint: too many internal nodes");
    if (n == 0) return Clustering{Method::DisjointSat, {}};

    // Enumerate set partitions via restricted growth strings.
    std::vector<std::size_t> rgs(n, 0);
    std::optional<Clustering> best;
    std::size_t best_k = n + 1;
    const auto materialize = [&](std::size_t k) {
        Clustering c;
        c.method = Method::DisjointSat;
        c.clusters.assign(k, {});
        for (std::size_t idx = 0; idx < n; ++idx)
            c.clusters[rgs[idx]].push_back(sdg.internal_nodes[idx]);
        for (auto& cl : c.clusters) std::sort(cl.begin(), cl.end());
        return c;
    };
    const auto next_rgs = [&]() -> bool {
        for (std::size_t pos = n; pos-- > 1;) {
            const std::size_t prefix_max = *std::max_element(rgs.begin(), rgs.begin() + pos);
            if (rgs[pos] <= prefix_max) {
                ++rgs[pos];
                std::fill(rgs.begin() + pos + 1, rgs.end(), 0);
                return true;
            }
        }
        return false;
    };
    do {
        const std::size_t k = 1 + *std::max_element(rgs.begin(), rgs.end());
        if (k < best_k) {
            Clustering c = materialize(k);
            if (check_validity(sdg, c).valid()) {
                best = std::move(c);
                best_k = k;
            }
        }
    } while (next_rgs());
    assert(best.has_value()); // all-singletons is always valid
    return *best;
}

} // namespace sbd::codegen
