#ifndef SBD_CORE_CLUSTERING_HPP
#define SBD_CORE_CLUSTERING_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/undirected.hpp"
#include "core/sdg.hpp"

namespace sbd::codegen {

/// The clustering/code-generation method. These are the paper's trade-off
/// points: each choice of clustering specializes the modular code-generation
/// scheme (Section 4).
enum class Method {
    Monolithic,     ///< single step() — the folk baseline from the Introduction
    StepGet,        ///< <= 2 functions (DATE'08 step-get; Mosterman-Ciolfi style)
    Dynamic,        ///< overlapping clusters, optimal modularity, maximal reusability
    DisjointSat,    ///< optimal disjoint clustering via iterated SAT (this paper)
    DisjointGreedy, ///< polynomial disjoint heuristic (Hainque-style merge baseline)
    Singletons      ///< one cluster per SDG node (finest; always valid)
};

const char* to_string(Method m);

/// A clustering of the internal nodes of an SDG. Clusters may overlap (the
/// dynamic method) or form a partition (all disjoint methods). Every
/// internal node belongs to at least one cluster.
struct Clustering {
    Method method = Method::Dynamic;
    std::vector<std::vector<graph::NodeId>> clusters; ///< each sorted ascending

    std::size_t num_clusters() const { return clusters.size(); }
    /// Which cluster(s) produce each output port, one entry per writer node
    /// of the output. For disjoint clusterings a writer's cluster is
    /// unambiguous; with overlap, a shared writer is attributed to the
    /// containing cluster whose input cone is smallest — attributing it to
    /// any other would make the generated profile export false
    /// dependencies. (Real diagrams have exactly one writer per output;
    /// synthetic SDGs like the Figure 7 gadgets may have several.)
    std::vector<std::vector<std::size_t>> output_attribution(const Sdg& sdg) const;
    bool is_partition(const Sdg& sdg) const;
    /// Number of (node, cluster) memberships beyond the first — the code
    /// replication the paper's Section 5 is about.
    std::size_t replicated_nodes(const Sdg& sdg) const;
    /// Clusters containing node v, ascending.
    std::vector<std::size_t> clusters_of(graph::NodeId v) const;
};

/// Result of the validity check of Definition 1 / Proposition 1.
struct ValidityReport {
    bool partition = false;      ///< every internal node in exactly one cluster
    bool no_false_io = false;    ///< condition 2: no added input-output deps
    bool acyclic = false;        ///< condition 3: quotient acyclic
    std::vector<std::pair<std::size_t, std::size_t>> false_io_pairs; ///< (in,out) ports

    bool valid() const { return partition && no_false_io && acyclic; }
    bool almost_valid() const { return partition && no_false_io; }
};

/// Checks Definition 1 validity of a *disjoint* clustering in polynomial
/// time (Proposition 1: transitive closures of the SDG and of its quotient
/// are compared on input-output pairs; quotient acyclicity via SCC).
ValidityReport check_validity(const Sdg& sdg, const Clustering& c);

/// Input-output dependencies (i, o) exported by generated code for this
/// clustering, including overlapping ones: the dependencies induced by
/// interface-function signatures plus synthesized PDG edges. For a disjoint
/// clustering this equals the quotient-closure dependencies of Definition 1.
std::vector<std::pair<std::size_t, std::size_t>> exported_io_dependencies(const Sdg& sdg,
                                                                          const Clustering& c);

/// The exported dependencies minus the true ones: nonempty iff the
/// clustering sacrifices reusability.
std::vector<std::pair<std::size_t, std::size_t>> false_io_dependencies(const Sdg& sdg,
                                                                       const Clustering& c);

/// Synthesized PDG edges between clusters (cluster indices): (a, b) means
/// cluster a's function must run before cluster b's. Rule: a -> b iff some
/// node exclusive to a feeds a node exclusive to b. (For disjoint
/// clusterings this is the quotient edge relation.)
std::vector<std::pair<std::size_t, std::size_t>> cluster_pdg_edges(const Sdg& sdg,
                                                                   const Clustering& c);

/// Definition 2: nodes u, v are mergeable iff clustering {u,v} + singletons
/// is almost valid.
bool mergeable(const Sdg& sdg, graph::NodeId u, graph::NodeId v);

/// The mergeability graph M(G) over internal nodes (Definition 2). Node
/// indices are positions in sdg.internal_nodes.
graph::Undirected mergeability_graph(const Sdg& sdg);

/// Exact optimal disjoint clustering by exhaustive partition enumeration
/// (test oracle; exponential, use only for <= ~10 internal nodes).
Clustering brute_force_optimal_disjoint(const Sdg& sdg);

} // namespace sbd::codegen

#endif
