#ifndef SBD_CORE_FINGERPRINT_HPP
#define SBD_CORE_FINGERPRINT_HPP

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>

#include "core/methods.hpp"
#include "sbd/block.hpp"

namespace sbd::codegen {

/// A 128-bit content hash. Two lanes of independent mixing make accidental
/// collisions between distinct structures astronomically unlikely, which is
/// what lets the profile cache treat "equal fingerprint" as "equal
/// compilation input" without a byte-for-byte comparison.
struct Fingerprint {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool operator==(const Fingerprint&) const = default;
    /// 32 lowercase hex digits (hi first) — the on-disk cache file stem.
    std::string hex() const;
};

struct FingerprintHash {
    std::size_t operator()(const Fingerprint& f) const {
        return static_cast<std::size_t>(f.lo ^ (f.hi * 0x9e3779b97f4a7c15ULL));
    }
};

/// Streaming structural hasher. Endian-stable: every value is absorbed as
/// explicit little-endian 64-bit words, so fingerprints (and therefore
/// on-disk cache keys) agree across hosts.
class Hasher {
public:
    void u64(std::uint64_t x);
    void u32(std::uint32_t x) { u64(x); }
    void u8(std::uint8_t x) { u64(x); }
    void i32(std::int32_t x) { u64(static_cast<std::uint32_t>(x)); }
    void boolean(bool b) { u64(b ? 1 : 0); }
    /// Bit pattern of a double (distinguishes -0.0/0.0 and all NaN payloads
    /// — the cache must never merge blocks whose constants merely compare
    /// equal).
    void f64(double d);
    /// Length-prefixed, so absorbing "ab","c" differs from "a","bc".
    void str(const std::string& s);
    void bytes(std::span<const std::uint8_t> data);

    Fingerprint digest() const;

private:
    std::uint64_t hi_ = 0x6a09e667f3bcc908ULL;
    std::uint64_t lo_ = 0xbb67ae8584caa73bULL;
    std::uint64_t count_ = 0;
};

/// Structural fingerprint of a block *type*, memoized by object identity so
/// shared sub-hierarchies are walked once. The fingerprint covers everything
/// modular compilation can observe about the block:
///  - atomic: type name, text spec, class, port names, initial state and
///    emit-time C++ semantics;
///  - opaque: declared interface functions and call-order relation;
///  - macro: port names, sub-block instances (name, trigger wiring and the
///    fingerprint of their type), and the connection list in stored order.
/// Two blocks with equal fingerprints therefore compile to bit-identical
/// artifacts under equal (method, options).
class BlockFingerprinter {
public:
    Fingerprint of(const Block& b);

private:
    std::unordered_map<const Block*, Fingerprint> memo_;
};

/// One-shot convenience form of BlockFingerprinter.
Fingerprint fingerprint_block(const Block& b);

/// The profile-cache key: structural block fingerprint x clustering method x
/// the canonical serialization of every ClusterOptions field x the cache
/// format version (so incompatible artifact layouts can never alias).
Fingerprint compile_key(const Fingerprint& block_fp, Method method, const ClusterOptions& opts);

} // namespace sbd::codegen

#endif
