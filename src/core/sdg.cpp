#include "core/sdg.hpp"

#include <cassert>

namespace sbd::codegen {

std::vector<std::string> Sdg::labels() const {
    std::vector<std::string> out(nodes.size());
    for (std::size_t v = 0; v < nodes.size(); ++v) {
        const SdgNode& n = nodes[v];
        switch (n.kind) {
        case SdgNode::Kind::Input: out[v] = "in:" + std::to_string(n.port); break;
        case SdgNode::Kind::Output: out[v] = "out:" + std::to_string(n.port); break;
        case SdgNode::Kind::Internal:
            out[v] = n.is_passthrough()
                         ? "pass:" + std::to_string(n.pt_input) + "->" + std::to_string(n.port)
                         : "sub" + std::to_string(n.sub) + ".fn" + std::to_string(n.fn);
            break;
        }
    }
    return out;
}

std::vector<std::pair<std::size_t, std::size_t>> Sdg::io_dependencies() const {
    std::vector<std::pair<std::size_t, std::size_t>> deps;
    for (std::size_t i = 0; i < input_nodes.size(); ++i) {
        const auto reach = graph.reachable_from(input_nodes[i]);
        for (std::size_t o = 0; o < output_nodes.size(); ++o)
            if (reach.test(output_nodes[o])) deps.emplace_back(i, o);
    }
    return deps;
}

std::string node_label(const Sdg& sdg, const MacroBlock& m,
                       std::span<const Profile* const> sub_profiles, graph::NodeId v) {
    const SdgNode& n = sdg.nodes[v];
    switch (n.kind) {
    case SdgNode::Kind::Input: return m.input_name(n.port);
    case SdgNode::Kind::Output: return m.output_name(n.port);
    case SdgNode::Kind::Internal:
        if (n.is_passthrough())
            return m.output_name(n.port) + ":=" + m.input_name(n.pt_input);
        return m.sub(n.sub).name + "." + sub_profiles[n.sub]->functions[n.fn].name;
    }
    return "?";
}

Sdg build_sdg_unchecked(const MacroBlock& m, std::span<const Profile* const> sub_profiles,
                        bool* cyclic) {
    assert(sub_profiles.size() == m.num_subs());
    m.validate();

    Sdg sdg;
    // Input and output nodes.
    for (std::size_t i = 0; i < m.num_inputs(); ++i) {
        const auto v = sdg.graph.add_node();
        sdg.nodes.push_back(SdgNode{SdgNode::Kind::Input, static_cast<std::int32_t>(i), -1, -1, -1});
        sdg.input_nodes.push_back(v);
    }
    for (std::size_t o = 0; o < m.num_outputs(); ++o) {
        const auto v = sdg.graph.add_node();
        sdg.nodes.push_back(
            SdgNode{SdgNode::Kind::Output, static_cast<std::int32_t>(o), -1, -1, -1});
        sdg.output_nodes.push_back(v);
    }
    // One internal node per interface function of every sub-block.
    std::vector<std::vector<graph::NodeId>> fn_node(m.num_subs());
    for (std::size_t s = 0; s < m.num_subs(); ++s) {
        const Profile& p = *sub_profiles[s];
        fn_node[s].resize(p.functions.size());
        for (std::size_t f = 0; f < p.functions.size(); ++f) {
            const auto v = sdg.graph.add_node();
            sdg.nodes.push_back(SdgNode{SdgNode::Kind::Internal, -1,
                                        static_cast<std::int32_t>(s), static_cast<std::int32_t>(f),
                                        -1});
            fn_node[s][f] = v;
            sdg.internal_nodes.push_back(v);
        }
    }

    // Lifted PDG edges of every sub-block.
    for (std::size_t s = 0; s < m.num_subs(); ++s)
        for (const auto& [a, b] : sub_profiles[s]->pdg_edges)
            sdg.graph.add_edge(fn_node[s][a], fn_node[s][b]);

    // Trigger wires: every interface function of a triggered sub-block
    // reads the trigger value to decide fire-vs-hold, so it depends on the
    // trigger's writer.
    for (std::size_t s = 0; s < m.num_subs(); ++s) {
        const auto& trig = m.sub(s).trigger;
        if (!trig) continue;
        for (std::size_t f = 0; f < sub_profiles[s]->functions.size(); ++f) {
            if (trig->kind == Endpoint::Kind::MacroInput) {
                sdg.graph.add_edge(sdg.input_nodes[trig->port], fn_node[s][f]);
            } else {
                const Profile& ps = *sub_profiles[trig->sub];
                const std::int32_t w = ps.writer_of_output(static_cast<std::size_t>(trig->port));
                if (w < 0)
                    throw ModelError("trigger of sub-block '" + m.sub(s).name +
                                     "' has no writer in the producer's profile");
                sdg.graph.add_edge(fn_node[trig->sub][w], fn_node[s][f]);
            }
        }
    }

    // Dataflow edges along connections.
    for (const Connection& c : m.connections()) {
        if (c.src.kind == Endpoint::Kind::MacroInput &&
            c.dst.kind == Endpoint::Kind::MacroOutput) {
            // Direct feed-through: insert the paper's dummy internal node so
            // that no input->output edge exists.
            const auto v = sdg.graph.add_node();
            sdg.nodes.push_back(
                SdgNode{SdgNode::Kind::Internal, c.dst.port, -1, -1, c.src.port});
            sdg.internal_nodes.push_back(v);
            sdg.graph.add_edge(sdg.input_nodes[c.src.port], v);
            sdg.graph.add_edge(v, sdg.output_nodes[c.dst.port]);
            continue;
        }
        if (c.dst.kind == Endpoint::Kind::SubInput) {
            const Profile& pd = *sub_profiles[c.dst.sub];
            const auto readers = pd.readers_of_input(static_cast<std::size_t>(c.dst.port));
            if (c.src.kind == Endpoint::Kind::MacroInput) {
                for (const std::size_t g : readers)
                    sdg.graph.add_edge(sdg.input_nodes[c.src.port], fn_node[c.dst.sub][g]);
            } else {
                const Profile& ps = *sub_profiles[c.src.sub];
                const std::int32_t f = ps.writer_of_output(static_cast<std::size_t>(c.src.port));
                if (f < 0)
                    throw ModelError("profile of sub-block '" + m.sub(c.src.sub).name +
                                     "' writes no function for a connected output");
                for (const std::size_t g : readers)
                    sdg.graph.add_edge(fn_node[c.src.sub][f], fn_node[c.dst.sub][g]);
            }
        } else {
            assert(c.dst.kind == Endpoint::Kind::MacroOutput);
            assert(c.src.kind == Endpoint::Kind::SubOutput);
            const Profile& ps = *sub_profiles[c.src.sub];
            const std::int32_t f = ps.writer_of_output(static_cast<std::size_t>(c.src.port));
            if (f < 0)
                throw ModelError("profile of sub-block '" + m.sub(c.src.sub).name +
                                 "' writes no function for a connected output");
            sdg.graph.add_edge(fn_node[c.src.sub][f], sdg.output_nodes[c.dst.port]);
        }
    }

    if (cyclic != nullptr) *cyclic = !sdg.graph.is_acyclic();
    return sdg;
}

Sdg build_sdg(const MacroBlock& m, std::span<const Profile* const> sub_profiles) {
    bool cyclic = false;
    Sdg sdg = build_sdg_unchecked(m, sub_profiles, &cyclic);
    if (cyclic) throw SdgCycleError(m.type_name());
    return sdg;
}

} // namespace sbd::codegen
