#include "core/emit_cpp.hpp"

#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace sbd::codegen {

namespace {

std::string sanitize_ident(const std::string& s) {
    std::string out;
    for (const char c : s)
        out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
    if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) out = "b_" + out;
    return out;
}

std::string dlit(double x) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", x);
    std::string s(buf);
    if (s.find_first_of(".eEn") == std::string::npos) s += ".0";
    return s;
}

/// Unique C++ class names per block type.
class NameTable {
public:
    const std::string& of(const Block& b) {
        const auto it = names_.find(&b);
        if (it != names_.end()) return it->second;
        std::string base = sanitize_ident(b.type_name());
        std::string name = base;
        int n = 1;
        while (used_.contains(name)) name = base + "_" + std::to_string(++n);
        used_.insert(name);
        return names_.emplace(&b, std::move(name)).first->second;
    }

private:
    std::map<const Block*, std::string> names_;
    std::set<std::string> used_;
};

std::string return_type(std::size_t nout) {
    if (nout == 0) return "void";
    if (nout == 1) return "double";
    return "std::array<double, " + std::to_string(nout) + ">";
}

void emit_atomic(std::ostream& os, const AtomicBlock& a, const std::string& cls) {
    const auto& cpp = a.cpp_semantics();
    if (!cpp)
        throw std::runtime_error("emit_cpp: atomic block '" + a.type_name() +
                                 "' has no C++ semantics");
    const std::size_t nstate = a.initial_state().size();
    os << "class " << cls << " {\npublic:\n";
    // init(): restore initial state.
    os << "  void init() {";
    for (std::size_t i = 0; i < nstate; ++i)
        os << " s" << i << " = " << dlit(a.initial_state()[i]) << ";";
    os << " }\n";
    // State serialization: the same flat-double layout the interpreter's
    // Instance::save_state uses, so snapshots cross backends bit-exactly.
    os << "  static constexpr std::size_t k_state_size = " << nstate << ";\n";
    os << "  void save_state(double*& p) const {";
    for (std::size_t i = 0; i < nstate; ++i) os << " *p++ = s" << i << ";";
    if (nstate == 0) os << " (void)p;";
    os << " }\n";
    os << "  void load_state(const double*& p) {";
    for (std::size_t i = 0; i < nstate; ++i) os << " s" << i << " = *p++;";
    if (nstate == 0) os << " (void)p;";
    os << " }\n";

    const auto params = [&](bool with_inputs) {
        std::string p;
        if (with_inputs)
            for (std::size_t i = 0; i < a.num_inputs(); ++i)
                p += (i ? ", double u" : "double u") + std::to_string(i);
        return p;
    };
    const auto output_epilogue = [&](std::ostream& o) {
        if (a.num_outputs() == 1) {
            o << "    return y0;\n";
        } else if (a.num_outputs() > 1) {
            o << "    return {";
            for (std::size_t i = 0; i < a.num_outputs(); ++i) o << (i ? ", y" : "y") << i;
            o << "};\n";
        }
    };
    const auto declare_outputs = [&](std::ostream& o) {
        if (a.num_outputs() == 0) return;
        o << "    double ";
        for (std::size_t i = 0; i < a.num_outputs(); ++i) o << (i ? ", y" : "y") << i << " = 0";
        o << ";\n";
    };

    if (a.block_class() == BlockClass::MooreSequential) {
        os << "  " << return_type(a.num_outputs()) << " get() {\n";
        declare_outputs(os);
        os << "    " << cpp->output_body << "\n";
        output_epilogue(os);
        os << "  }\n";
        os << "  void step(" << params(true) << ") {\n";
        os << "    " << cpp->update_body << "\n";
        // Silence unused-parameter warnings for inputs the body ignores.
        for (std::size_t i = 0; i < a.num_inputs(); ++i) os << "    (void)u" << i << ";\n";
        os << "  }\n";
    } else {
        os << "  " << return_type(a.num_outputs()) << " step(" << params(true) << ") {\n";
        declare_outputs(os);
        if (!cpp->output_body.empty()) os << "    " << cpp->output_body << "\n";
        if (a.block_class() == BlockClass::Sequential && !cpp->update_body.empty())
            os << "    " << cpp->update_body << "\n";
        for (std::size_t i = 0; i < a.num_inputs(); ++i) os << "    (void)u" << i << ";\n";
        output_epilogue(os);
        os << "  }\n";
    }
    if (!a.initial_state().empty()) {
        os << "private:\n ";
        for (std::size_t i = 0; i < a.initial_state().size(); ++i)
            os << " double s" << i << " = " << dlit(a.initial_state()[i]) << ";";
        os << "\n";
    }
    os << "};\n\n";
}

void emit_macro(std::ostream& os, const CompiledBlock& cb, const MacroBlock& m,
                NameTable& names) {
    const CodeUnit& code = *cb.code;
    const std::string cls = names.of(m);
    os << "class " << cls << " {\npublic:\n";

    // init(): slots and counters back to zero, sub-blocks re-initialized —
    // the same full reset the interpreter performs, so a recycled native
    // instance is indistinguishable from a fresh one.
    os << "  void init() {\n";
    for (std::size_t slot = 0; slot < code.num_slots; ++slot)
        os << "    z_" << code.slot_names[slot] << " = 0;\n";
    for (std::size_t c = 0; c < code.counter_mods.size(); ++c)
        os << "    c" << c << " = 0;\n";
    for (std::size_t s = 0; s < m.num_subs(); ++s)
        os << "    m_" << sanitize_ident(m.sub(s).name) << ".init();\n";
    os << "  }\n";

    // State serialization, interpreter layout: slots, guard counters
    // (widened to double), then sub-instances depth-first in sub order.
    os << "  static constexpr std::size_t k_state_size = "
       << (code.num_slots + code.counter_mods.size());
    for (std::size_t s = 0; s < m.num_subs(); ++s)
        os << " + " << names.of(*m.sub(s).type) << "::k_state_size";
    os << ";\n";
    os << "  void save_state(double*& p) const {\n";
    for (std::size_t slot = 0; slot < code.num_slots; ++slot)
        os << "    *p++ = z_" << code.slot_names[slot] << ";\n";
    for (std::size_t c = 0; c < code.counter_mods.size(); ++c)
        os << "    *p++ = static_cast<double>(c" << c << ");\n";
    for (std::size_t s = 0; s < m.num_subs(); ++s)
        os << "    m_" << sanitize_ident(m.sub(s).name) << ".save_state(p);\n";
    if (code.num_slots + code.counter_mods.size() + m.num_subs() == 0) os << "    (void)p;\n";
    os << "  }\n";
    os << "  void load_state(const double*& p) {\n";
    for (std::size_t slot = 0; slot < code.num_slots; ++slot)
        os << "    z_" << code.slot_names[slot] << " = *p++;\n";
    for (std::size_t c = 0; c < code.counter_mods.size(); ++c)
        os << "    c" << c << " = static_cast<int>(*p++);\n";
    for (std::size_t s = 0; s < m.num_subs(); ++s)
        os << "    m_" << sanitize_ident(m.sub(s).name) << ".load_state(p);\n";
    if (code.num_slots + code.counter_mods.size() + m.num_subs() == 0) os << "    (void)p;\n";
    os << "  }\n";

    for (const GenFunction& fn : code.functions) {
        const auto param_name = [&](std::size_t port) {
            return "in_" + sanitize_ident(code.param_names[port]);
        };
        const auto value = [&](const ValueRef& v) -> std::string {
            if (v.kind == ValueRef::Kind::Param)
                return param_name(static_cast<std::size_t>(v.index));
            return "z_" + code.slot_names[v.index];
        };
        os << "  " << return_type(fn.sig.writes.size()) << " " << fn.sig.name << "(";
        for (std::size_t i = 0; i < fn.sig.reads.size(); ++i)
            os << (i ? ", double " : "double ") << param_name(fn.sig.reads[i]);
        os << ") {\n";
        std::string indent = "    ";
        for (const Stmt& s : fn.body) {
            if (const auto* gb = std::get_if<GuardBegin>(&s)) {
                os << indent << "if (c" << gb->counter << " == 0) {\n";
                indent += "  ";
            } else if (std::holds_alternative<GuardEnd>(s)) {
                indent.resize(indent.size() - 2);
                os << indent << "}\n";
            } else if (const auto* bump = std::get_if<BumpStmt>(&s)) {
                os << indent << "c" << bump->counter << " = (c" << bump->counter << " + 1) % "
                   << bump->mod << ";\n";
            } else if (const auto* assign = std::get_if<AssignStmt>(&s)) {
                os << indent << "z_" << code.slot_names[assign->dst_slot] << " = "
                   << value(assign->src) << ";\n";
            } else {
                const auto& call = std::get<CallStmt>(s);
                const std::string inst = "m_" + sanitize_ident(m.sub(call.sub).name);
                // Method name: last path component of the display callee.
                const std::string meth = call.callee.substr(call.callee.rfind('.') + 1);
                std::string invocation = inst + "." + meth + "(";
                for (std::size_t i = 0; i < call.args.size(); ++i)
                    invocation += (i ? ", " : "") + value(call.args[i]);
                invocation += ")";
                os << indent;
                // NaN triggers fire: the interpreter skips only when
                // trigger < 0.5, so the emitted guard must be the negation
                // of that comparison, not `>= 0.5` (which NaN fails).
                if (call.trigger) os << "if (!(" << value(*call.trigger) << " < 0.5)) ";
                if (call.results.empty()) {
                    os << invocation << ";\n";
                } else if (call.results.size() == 1) {
                    os << "z_" << code.slot_names[call.results[0]] << " = " << invocation
                       << ";\n";
                } else {
                    os << "{ const auto r = " << invocation << ";";
                    for (std::size_t i = 0; i < call.results.size(); ++i)
                        os << " z_" << code.slot_names[call.results[i]] << " = r[" << i << "];";
                    os << " }\n";
                }
            }
        }
        if (fn.returns.size() == 1) {
            os << "    return " << value(fn.returns[0]) << ";\n";
        } else if (fn.returns.size() > 1) {
            os << "    return {";
            for (std::size_t i = 0; i < fn.returns.size(); ++i)
                os << (i ? ", " : "") << value(fn.returns[i]);
            os << "};\n";
        }
        os << "  }\n";
    }

    os << "private:\n";
    for (std::size_t s = 0; s < m.num_subs(); ++s)
        os << "  " << names.of(*m.sub(s).type) << " m_" << sanitize_ident(m.sub(s).name)
           << ";\n";
    for (std::size_t slot = 0; slot < code.num_slots; ++slot)
        os << "  double z_" << code.slot_names[slot] << " = 0;\n";
    for (std::size_t c = 0; c < code.counter_mods.size(); ++c) os << "  int c" << c << " = 0;\n";
    os << "};\n\n";
}

} // namespace

std::string emit_cpp(const CompiledSystem& sys) {
    std::ostringstream os;
    os << "// Generated by sbdgen: modular code from a synchronous block diagram.\n"
       << "#include <algorithm>\n#include <array>\n#include <cmath>\n#include <cstddef>\n\n"
       << "namespace gen {\n\n";
    NameTable names;
    for (const Block* b : sys.order()) {
        const CompiledBlock& cb = sys.at(*b);
        if (b->is_opaque())
            throw std::runtime_error("emit_cpp: block '" + b->type_name() +
                                     "' is interface-only; supply its implementation to emit "
                                     "a complete program");
        if (b->is_atomic())
            emit_atomic(os, static_cast<const AtomicBlock&>(*b), names.of(*b));
        else
            emit_macro(os, cb, static_cast<const MacroBlock&>(*b), names);
    }
    os << "} // namespace gen\n";
    return os.str();
}

std::string emit_cpp_class_name(const CompiledSystem& sys, const Block& block) {
    // Rebuild the same name table emit_cpp produced (same visit order).
    NameTable names;
    for (const Block* b : sys.order()) names.of(*b);
    return names.of(block);
}

std::vector<std::vector<double>> lcg_input_trace(std::size_t num_inputs, std::size_t steps,
                                                 std::uint64_t seed) {
    std::vector<std::vector<double>> trace(steps, std::vector<double>(num_inputs));
    std::uint64_t s = seed;
    for (std::size_t t = 0; t < steps; ++t)
        for (std::size_t i = 0; i < num_inputs; ++i) {
            s = s * 6364136223846793005ULL + 1442695040888963407ULL;
            trace[t][i] = static_cast<double>((s >> 33) & 0xFFFF) / 4096.0 - 8.0;
        }
    return trace;
}

std::string emit_cpp_driver(const CompiledSystem& sys, std::size_t steps, std::uint64_t seed) {
    const CompiledBlock& root = sys.root();
    if (root.block->is_atomic())
        throw std::runtime_error("emit_cpp_driver: root must be a macro block");
    const auto& m = static_cast<const MacroBlock&>(*root.block);
    const Profile& p = root.profile;

    // PDG-consistent call order.
    graph::Digraph pdg(p.functions.size());
    for (const auto& [a, b] : p.pdg_edges)
        pdg.add_edge(static_cast<graph::NodeId>(a), static_cast<graph::NodeId>(b));
    const auto order = pdg.topological_order();
    if (!order) throw std::runtime_error("emit_cpp_driver: cyclic PDG");

    // Rebuild the same name table emit_cpp produced (same visit order).
    NameTable names;
    for (const Block* b : sys.order()) names.of(*b);
    std::ostringstream os;
    os << "#include <cstdio>\n#include <cstdint>\n\n"
       << "int main() {\n"
       << "  gen::" << names.of(m) << " root;\n"
       << "  root.init();\n"
       << "  std::uint64_t s = " << seed << "ULL;\n"
       << "  auto rnd = [&]() { s = s * 6364136223846793005ULL + 1442695040888963407ULL;\n"
       << "    return static_cast<double>((s >> 33) & 0xFFFF) / 4096.0 - 8.0; };\n"
       << "  double in[" << std::max<std::size_t>(m.num_inputs(), 1) << "];\n"
       << "  double out[" << std::max<std::size_t>(m.num_outputs(), 1) << "];\n"
       << "  for (std::size_t t = 0; t < " << steps << "; ++t) {\n"
       << "    for (std::size_t i = 0; i < " << m.num_inputs() << "; ++i) in[i] = rnd();\n";
    for (const auto f : *order) {
        const InterfaceFunction& fn = p.functions[f];
        std::string call = "root." + fn.name + "(";
        for (std::size_t i = 0; i < fn.reads.size(); ++i)
            call += (i ? ", in[" : "in[") + std::to_string(fn.reads[i]) + "]";
        call += ")";
        if (fn.writes.empty()) {
            os << "    " << call << ";\n";
        } else if (fn.writes.size() == 1) {
            os << "    out[" << fn.writes[0] << "] = " << call << ";\n";
        } else {
            os << "    { const auto r = " << call << ";";
            for (std::size_t i = 0; i < fn.writes.size(); ++i)
                os << " out[" << fn.writes[i] << "] = r[" << i << "];";
            os << " }\n";
        }
    }
    os << "    for (std::size_t o = 0; o < " << m.num_outputs()
       << "; ++o) std::printf(\"%.17g\\n\", out[o]);\n"
       << "  }\n  return 0;\n}\n";
    return os.str();
}

} // namespace sbd::codegen
