#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/methods.hpp"
#include "resilience/budget.hpp"
#include "resilience/fault.hpp"
#include "sat/solver.hpp"

namespace sbd::codegen {

namespace {

/// Everything the encoding needs from the SDG, precomputed once.
struct Instance {
    std::vector<graph::NodeId> internal;                      ///< internal nodes
    std::vector<std::size_t> node_pos;                        ///< SDG node -> index in internal
    std::vector<std::pair<std::size_t, std::size_t>> eii;     ///< internal -> internal edges
    std::vector<std::pair<std::size_t, std::size_t>> ein;     ///< input port -> internal
    std::vector<std::pair<std::size_t, std::size_t>> eout;    ///< internal -> output port
    std::vector<std::pair<std::size_t, std::size_t>> non_dep; ///< (i, o) with no true dependency
    std::size_t nin = 0, nout = 0;
};

Instance analyze(const Sdg& sdg) {
    Instance inst;
    inst.internal = sdg.internal_nodes;
    inst.node_pos.assign(sdg.graph.num_nodes(), static_cast<std::size_t>(-1));
    for (std::size_t b = 0; b < inst.internal.size(); ++b) inst.node_pos[inst.internal[b]] = b;
    inst.nin = sdg.num_inputs();
    inst.nout = sdg.num_outputs();

    for (const auto u : sdg.internal_nodes)
        for (const auto v : sdg.graph.successors(u)) {
            if (sdg.is_internal(v))
                inst.eii.emplace_back(inst.node_pos[u], inst.node_pos[v]);
            else if (sdg.is_output(v))
                inst.eout.emplace_back(inst.node_pos[u],
                                       static_cast<std::size_t>(sdg.nodes[v].port));
        }
    for (std::size_t i = 0; i < inst.nin; ++i)
        for (const auto v : sdg.graph.successors(sdg.input_nodes[i])) {
            assert(sdg.is_internal(v)); // no direct input->output edges in an SDG
            inst.ein.emplace_back(i, inst.node_pos[v]);
        }
    for (std::size_t i = 0; i < inst.nin; ++i) {
        const auto reach = sdg.graph.reachable_from(sdg.input_nodes[i]);
        for (std::size_t o = 0; o < inst.nout; ++o)
            if (!reach.test(sdg.output_nodes[o])) inst.non_dep.emplace_back(i, o);
    }
    return inst;
}

/// Builds the formula F_k of the paper's Figure 8 as a CNF over the
/// variable layout documented at encode_fk().
sat::Cnf build_fk(const Instance& inst, std::size_t k, const ClusterOptions& opts) {
    using sat::Lit;
    using sat::Var;
    sat::Cnf cnf;
    const std::size_t B = inst.internal.size();
    const auto X = [&](std::size_t b, std::size_t j) { return static_cast<Var>(b * k + j); };
    const auto Y = [&](std::size_t o, std::size_t j) {
        return static_cast<Var>(B * k + o * k + j);
    };
    const auto Z = [&](std::size_t i, std::size_t j) {
        return static_cast<Var>(B * k + inst.nout * k + i * k + j);
    };
    cnf.num_vars = (B + inst.nout + inst.nin) * k;

    sat::Clause cl;
    // (1) every cluster contains at least one internal node.
    for (std::size_t j = 0; j < k; ++j) {
        cl.clear();
        for (std::size_t b = 0; b < B; ++b) cl.push_back(sat::pos(X(b, j)));
        cnf.add(cl);
    }
    // (2) every internal node belongs to exactly one cluster.
    for (std::size_t b = 0; b < B; ++b) {
        cl.clear();
        for (std::size_t j = 0; j < k; ++j) cl.push_back(sat::pos(X(b, j)));
        cnf.add(cl);
        for (std::size_t j = 0; j < k; ++j)
            for (std::size_t l = j + 1; l < k; ++l)
                cnf.add({sat::neg(X(b, j)), sat::neg(X(b, l))});
    }
    // (3) b -> o implies o depends on b's cluster.
    for (const auto& [b, o] : inst.eout)
        for (std::size_t j = 0; j < k; ++j) cnf.add({sat::neg(X(b, j)), sat::pos(Y(o, j))});
    // (4) i -> b implies b's cluster depends on i.
    for (const auto& [i, b] : inst.ein)
        for (std::size_t j = 0; j < k; ++j) cnf.add({sat::neg(X(b, j)), sat::pos(Z(i, j))});
    // (5) b1 -> b2 implies In([b1]) subset of In([b2]).
    for (const auto& [b1, b2] : inst.eii)
        for (std::size_t i = 0; i < inst.nin; ++i)
            for (std::size_t j = 0; j < k; ++j)
                for (std::size_t l = 0; l < k; ++l) {
                    if (j == l) continue;
                    cnf.add({sat::neg(X(b1, j)), sat::neg(X(b2, l)), sat::neg(Z(i, j)),
                             sat::pos(Z(i, l))});
                }
    // (6) b1 -> b2 implies Out([b2]) subset of Out([b1]).
    for (const auto& [b1, b2] : inst.eii)
        for (std::size_t o = 0; o < inst.nout; ++o)
            for (std::size_t j = 0; j < k; ++j)
                for (std::size_t l = 0; l < k; ++l) {
                    if (j == l) continue;
                    cnf.add({sat::neg(X(b1, j)), sat::neg(X(b2, l)), sat::neg(Y(o, l)),
                             sat::pos(Y(o, j))});
                }
    // (7) no cluster may join an input and an output that are independent.
    for (const auto& [i, o] : inst.non_dep)
        for (std::size_t j = 0; j < k; ++j) cnf.add({sat::neg(Z(i, j)), sat::neg(Y(o, j))});

    if (opts.sat_symmetry_breaking) {
        // Clusters numbered by minimal member: node b only in clusters <= b,
        // and cluster j-1 must be opened by an earlier node than any node of
        // cluster j.
        for (std::size_t b = 0; b < B; ++b)
            for (std::size_t j = b + 1; j < k; ++j) cnf.add({sat::neg(X(b, j))});
        for (std::size_t b = 1; b < B; ++b)
            for (std::size_t j = 1; j < std::min(b + 1, k); ++j) {
                cl.clear();
                cl.push_back(sat::neg(X(b, j)));
                for (std::size_t b2 = 0; b2 < b; ++b2) cl.push_back(sat::pos(X(b2, j - 1)));
                cnf.add(cl);
            }
    }
    return cnf;
}

/// Solves F_k; on success fills the cluster assignment per internal-node
/// index.
bool solve_fk(const Instance& inst, std::size_t k, const ClusterOptions& opts,
              std::vector<std::size_t>* assignment, SatClusterStats* stats) {
    // Deterministic budget-trip injection for the chaos harness: the site
    // mirrors the real exhaustion path exactly (same exception, same spot).
    if (SBD_FAULT_HIT("sat.budget")) throw sat::Solver::BudgetExceeded{};
    const sat::Cnf cnf = build_fk(inst, k, opts);
    sat::Solver solver;
    if (opts.sat_conflict_budget != 0) solver.set_conflict_budget(opts.sat_conflict_budget);
    for (std::size_t v = 0; v < cnf.num_vars; ++v) solver.new_var();
    for (const auto& clause : cnf.clauses) solver.add_clause(clause);

    if (stats != nullptr) {
        stats->vars = cnf.num_vars;
        stats->clauses = cnf.clauses.size();
    }
    bool sat = false;
    try {
        sat = solver.solve();
    } catch (const sat::Solver::BudgetExceeded&) {
        // Record what the aborted solve cost before handing the trip to
        // cluster_disjoint_sat's degradation logic.
        if (stats != nullptr) {
            stats->conflicts += solver.stats().conflicts;
            stats->decisions += solver.stats().decisions;
            stats->propagations += solver.stats().propagations;
        }
        throw;
    }
    if (stats != nullptr) {
        stats->conflicts += solver.stats().conflicts;
        stats->decisions += solver.stats().decisions;
        stats->propagations += solver.stats().propagations;
    }
    if (!sat) return false;
    const std::size_t B = inst.internal.size();
    assignment->assign(B, 0);
    for (std::size_t b = 0; b < B; ++b) {
        bool found = false;
        for (std::size_t j = 0; j < k; ++j)
            if (solver.model_value(static_cast<sat::Var>(b * k + j))) {
                (*assignment)[b] = j;
                found = true;
                break;
            }
        assert(found);
        (void)found;
    }
    return true;
}

/// Sound lower bound on the number of disjoint clusters: when every output
/// node has a unique writer (true for SDGs built from diagrams), outputs
/// whose input-dependency sets differ cannot have their writers in the same
/// cluster, so the number of distinct In(y) classes is a floor. Synthetic
/// SDGs (e.g. the Figure 7 reduction gadgets) may violate the unique-writer
/// assumption; the bound then falls back to 1.
std::size_t class_lower_bound(const Sdg& sdg) {
    for (const auto out : sdg.output_nodes)
        if (sdg.graph.in_degree(out) != 1) return 1;
    std::vector<graph::Bitset> keys;
    for (std::size_t o = 0; o < sdg.num_outputs(); ++o) {
        graph::Bitset key(sdg.num_inputs());
        const auto reaching = sdg.graph.reaching_to(sdg.output_nodes[o]);
        for (std::size_t i = 0; i < sdg.num_inputs(); ++i)
            if (reaching.test(sdg.input_nodes[i])) key.set(i);
        if (std::find(keys.begin(), keys.end(), key) == keys.end()) keys.push_back(key);
    }
    return std::max<std::size_t>(keys.size(), 1);
}

} // namespace

Clustering cluster_disjoint_sat(const Sdg& sdg, const ClusterOptions& opts,
                                SatClusterStats* stats) {
    Clustering result;
    result.method = Method::DisjointSat;
    const Instance inst = analyze(sdg);
    const std::size_t B = inst.internal.size();
    if (B == 0) return result;

    std::size_t k0 = opts.sat_start_k > 0 ? static_cast<std::size_t>(opts.sat_start_k)
                                          : class_lower_bound(sdg);
    k0 = std::min(k0, B);
    if (stats != nullptr) stats->first_k = k0;

    std::vector<std::size_t> assignment;
    try {
        for (std::size_t k = k0; k <= B; ++k) {
            if (stats != nullptr) ++stats->iterations;
            if (solve_fk(inst, k, opts, &assignment, stats)) {
                result.clusters.assign(k, {});
                for (std::size_t b = 0; b < B; ++b)
                    result.clusters[assignment[b]].push_back(inst.internal[b]);
                for (auto& cl : result.clusters) std::sort(cl.begin(), cl.end());
                if (stats != nullptr) stats->final_k = k;
                // Lemma 5: the first satisfiable k yields a clustering that is
                // not just almost valid but valid; verify defensively.
                const auto report = check_validity(sdg, result);
                if (!report.valid())
                    throw std::logic_error(
                        "cluster_disjoint_sat: extracted clustering failed validation");
                return result;
            }
        }
    } catch (const sat::Solver::BudgetExceeded&) {
        if (stats != nullptr) stats->budget_exhausted = true;
        if (!opts.sat_budget_degrade)
            throw resilience::BudgetExhausted(
                "cluster_disjoint_sat: SAT conflict budget (" +
                std::to_string(opts.sat_conflict_budget) +
                ") exhausted; rerun with a larger --sat-conflict-budget or enable "
                "degradation [SBD021]");
        // Degradation ladder (DESIGN.md "Resilience"): optimal-disjoint ->
        // step-get (disjoint, at most two functions; valid for every SDG
        // built from a diagram) -> dynamic (valid for every SDG, possibly
        // overlapping). Both keep the compile-or-reject contract: the
        // result is correct, only non-optimal.
        Clustering degraded = cluster_stepget(sdg);
        if (!check_validity(sdg, degraded).valid())
            degraded = cluster_dynamic(sdg, opts);
        return degraded;
    }
    throw std::logic_error("cluster_disjoint_sat: no clustering found (unreachable)");
}

sat::Cnf encode_fk(const Sdg& sdg, std::size_t k, const ClusterOptions& opts) {
    return build_fk(analyze(sdg), k, opts);
}

} // namespace sbd::codegen
