#include "core/ir.hpp"

#include <sstream>

namespace sbd::codegen {

OpCounts count_ops(std::span<const Stmt> body) {
    struct Visitor {
        OpCounts c;
        void operator()(const CallStmt&) { ++c.calls; }
        void operator()(const AssignStmt&) { ++c.assigns; }
        void operator()(const GuardBegin&) { ++c.guards; }
        void operator()(const GuardEnd&) { ++c.guards; }
        void operator()(const BumpStmt&) { ++c.bumps; }
    } v;
    for (const auto& s : body) std::visit(v, s);
    return v.c;
}

OpCounts count_ops(const GenFunction& fn) { return count_ops(std::span<const Stmt>(fn.body)); }

OpCounts count_ops(const CodeUnit& cu) {
    OpCounts total;
    for (const auto& fn : cu.functions) total += count_ops(fn);
    return total;
}

std::size_t CodeUnit::line_count() const {
    std::size_t lines = 0;
    for (const auto& fn : functions) {
        lines += 2; // signature line and closing brace
        if (!fn.returns.empty()) ++lines;
        lines += count_ops(fn).total();
    }
    return lines;
}

std::size_t CodeUnit::call_count() const { return count_ops(*this).calls; }

std::string CodeUnit::to_pseudocode() const {
    std::ostringstream os;
    const auto value = [&](const ValueRef& v) -> std::string {
        if (v.kind == ValueRef::Kind::Param) return param_names.at(v.index);
        return slot_names.at(v.index);
    };
    for (const auto& fn : functions) {
        os << block_name << "." << fn.sig.name << "(";
        for (std::size_t i = 0; i < fn.sig.reads.size(); ++i)
            os << (i ? ", " : "") << param_names.at(fn.sig.reads[i]);
        os << ")";
        if (!fn.sig.writes.empty()) {
            os << " returns (";
            for (std::size_t i = 0; i < fn.sig.writes.size(); ++i)
                os << (i ? ", " : "") << output_names.at(fn.sig.writes[i]);
            os << ")";
        }
        os << " {\n";
        std::string indent = "  ";
        for (const auto& s : fn.body) {
            if (std::holds_alternative<GuardEnd>(s)) {
                indent = "  ";
                os << indent << "}\n";
                continue;
            }
            os << indent;
            if (const auto* call = std::get_if<CallStmt>(&s)) {
                if (call->trigger) os << "if (" << value(*call->trigger) << " >= 0.5) ";
                if (!call->results.empty()) {
                    os << (call->results.size() > 1 ? "(" : "");
                    for (std::size_t i = 0; i < call->results.size(); ++i)
                        os << (i ? ", " : "") << slot_names.at(call->results[i]);
                    os << (call->results.size() > 1 ? ")" : "") << " := ";
                }
                os << call->callee << "(";
                for (std::size_t i = 0; i < call->args.size(); ++i)
                    os << (i ? ", " : "") << value(call->args[i]);
                os << ");\n";
            } else if (const auto* assign = std::get_if<AssignStmt>(&s)) {
                os << slot_names.at(assign->dst_slot) << " := " << value(assign->src) << ";\n";
            } else if (const auto* gb = std::get_if<GuardBegin>(&s)) {
                os << "if (c" << gb->counter << " == 0) {\n";
                indent = "    ";
            } else if (const auto* bump = std::get_if<BumpStmt>(&s)) {
                os << "c" << bump->counter << " := (c" << bump->counter << " + 1) mod "
                   << bump->mod << ";\n";
            }
        }
        if (!fn.returns.empty()) {
            os << "  return (";
            for (std::size_t i = 0; i < fn.returns.size(); ++i)
                os << (i ? ", " : "") << value(fn.returns[i]);
            os << ");\n";
        }
        os << "}\n";
    }
    return os.str();
}

} // namespace sbd::codegen
