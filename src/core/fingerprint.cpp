#include "core/fingerprint.hpp"

#include <cstring>

#include "sbd/opaque.hpp"

namespace sbd::codegen {

namespace {

/// splitmix64 finalizer: full-avalanche 64-bit mixing.
std::uint64_t mix(std::uint64_t z) {
    z ^= z >> 30;
    z *= 0xbf58476d1ce4e5b9ULL;
    z ^= z >> 27;
    z *= 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return z;
}

/// The cache-key schema version. Bump whenever the fingerprint recipe or
/// the serialized artifact layout changes: old on-disk entries then miss
/// instead of deserializing garbage.
constexpr std::uint64_t kKeySchemaVersion = 2; // v2: ClusterOptions::sat_budget_degrade

} // namespace

std::string Fingerprint::hex() const {
    static const char* digits = "0123456789abcdef";
    std::string s(32, '0');
    for (int i = 0; i < 16; ++i) {
        const std::uint64_t word = i < 8 ? hi : lo;
        const int shift = 56 - 8 * (i % 8);
        const std::uint8_t byte = static_cast<std::uint8_t>(word >> shift);
        s[2 * static_cast<std::size_t>(i)] = digits[byte >> 4];
        s[2 * static_cast<std::size_t>(i) + 1] = digits[byte & 0xF];
    }
    return s;
}

void Hasher::u64(std::uint64_t x) {
    ++count_;
    lo_ = mix(lo_ ^ (x * 0xff51afd7ed558ccdULL));
    hi_ = mix(hi_ + x * 0xc4ceb9fe1a85ec53ULL + count_);
}

void Hasher::f64(double d) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    u64(bits);
}

void Hasher::bytes(std::span<const std::uint8_t> data) {
    u64(data.size());
    std::uint64_t word = 0;
    std::size_t i = 0;
    for (const std::uint8_t b : data) {
        word |= static_cast<std::uint64_t>(b) << (8 * (i % 8));
        if (++i % 8 == 0) {
            u64(word);
            word = 0;
        }
    }
    if (i % 8 != 0) u64(word);
}

void Hasher::str(const std::string& s) {
    bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

Fingerprint Hasher::digest() const {
    Fingerprint f;
    f.hi = mix(hi_ ^ mix(lo_ + count_));
    f.lo = mix(lo_ ^ mix(hi_ ^ 0x2545f4914f6cdd1dULL));
    return f;
}

namespace {

void absorb_endpoint(Hasher& h, const Endpoint& e) {
    h.u8(static_cast<std::uint8_t>(e.kind));
    h.i32(e.sub);
    h.i32(e.port);
}

void absorb_ports(Hasher& h, const Block& b) {
    h.u64(b.num_inputs());
    for (std::size_t i = 0; i < b.num_inputs(); ++i) h.str(b.input_name(i));
    h.u64(b.num_outputs());
    for (std::size_t o = 0; o < b.num_outputs(); ++o) h.str(b.output_name(o));
}

Fingerprint fingerprint_atomic(const AtomicBlock& a) {
    Hasher h;
    h.str("atomic");
    h.str(a.type_name());
    h.str(a.text_spec());
    absorb_ports(h, a);
    h.u8(static_cast<std::uint8_t>(a.block_class()));
    h.u64(a.initial_state().size());
    for (const double v : a.initial_state()) h.f64(v);
    if (a.cpp_semantics()) {
        h.str(a.cpp_semantics()->output_body);
        h.str(a.cpp_semantics()->update_body);
    } else {
        h.u8(0);
    }
    return h.digest();
}

Fingerprint fingerprint_opaque(const OpaqueBlock& b) {
    Hasher h;
    h.str("opaque");
    h.str(b.type_name());
    absorb_ports(h, b);
    h.u8(static_cast<std::uint8_t>(b.block_class()));
    h.u64(b.functions().size());
    for (const auto& fn : b.functions()) {
        h.str(fn.name);
        h.u64(fn.reads.size());
        for (const auto r : fn.reads) h.u64(r);
        h.u64(fn.writes.size());
        for (const auto w : fn.writes) h.u64(w);
    }
    h.u64(b.order().size());
    for (const auto& [x, y] : b.order()) {
        h.u64(x);
        h.u64(y);
    }
    return h.digest();
}

} // namespace

Fingerprint BlockFingerprinter::of(const Block& b) {
    const auto it = memo_.find(&b);
    if (it != memo_.end()) return it->second;

    Fingerprint fp;
    if (b.is_opaque()) {
        fp = fingerprint_opaque(static_cast<const OpaqueBlock&>(b));
    } else if (b.is_atomic()) {
        fp = fingerprint_atomic(static_cast<const AtomicBlock&>(b));
    } else {
        const auto& m = static_cast<const MacroBlock&>(b);
        Hasher h;
        h.str("macro");
        h.str(m.type_name());
        absorb_ports(h, m);
        h.u64(m.num_subs());
        for (std::size_t s = 0; s < m.num_subs(); ++s) {
            const auto& sub = m.sub(s);
            h.str(sub.name);
            const Fingerprint sub_fp = of(*sub.type); // bottom-up, memoized
            h.u64(sub_fp.hi);
            h.u64(sub_fp.lo);
            h.boolean(sub.trigger.has_value());
            if (sub.trigger) absorb_endpoint(h, *sub.trigger);
        }
        // Connections in stored order: reordering cannot change semantics,
        // but it may change generated-code serialization tie-breaks, and a
        // cache hit must guarantee bit-identical artifacts — so a reordered
        // diagram conservatively misses.
        h.u64(m.connections().size());
        for (const Connection& c : m.connections()) {
            absorb_endpoint(h, c.src);
            absorb_endpoint(h, c.dst);
        }
        fp = h.digest();
    }
    memo_.emplace(&b, fp);
    return fp;
}

Fingerprint fingerprint_block(const Block& b) {
    BlockFingerprinter f;
    return f.of(b);
}

Fingerprint compile_key(const Fingerprint& block_fp, Method method, const ClusterOptions& opts) {
    Hasher h;
    h.u64(kKeySchemaVersion);
    h.u64(block_fp.hi);
    h.u64(block_fp.lo);
    h.u8(static_cast<std::uint8_t>(method));
    h.str(canonical_options(opts));
    return h.digest();
}

} // namespace sbd::codegen
