#ifndef SBD_CORE_IR_HPP
#define SBD_CORE_IR_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "core/profile.hpp"

namespace sbd::codegen {

/// A value read by a generated statement: either a parameter of the
/// enclosing interface function (a macro input port) or a persistent slot
/// (an internal signal, kept in the generated block's state as the paper's
/// "internal persistent variables" z1, z2, ...).
struct ValueRef {
    enum class Kind : std::uint8_t { Param, Slot };
    Kind kind = Kind::Slot;
    std::int32_t index = -1; ///< input port for Param, slot id for Slot

    static ValueRef param(std::int32_t port) { return {Kind::Param, port}; }
    static ValueRef slot(std::int32_t s) { return {Kind::Slot, s}; }
    bool operator==(const ValueRef&) const = default;
};

/// slots... := sub.fn(args...), optionally predicated on a trigger:
/// if (trigger >= 0.5) { slots... := sub.fn(args...) }. Skipping the call
/// leaves the result slots at their previous values — exactly the triggered
/// extension's hold semantics.
struct CallStmt {
    std::int32_t sub = -1; ///< sub-block index in the macro
    std::int32_t fn = -1;  ///< interface-function index in the sub's profile
    std::vector<ValueRef> args;        ///< one per read port of sub.fn, in order
    std::vector<std::int32_t> results; ///< one slot per written port, in order
    std::string callee;                ///< display name, e.g. "A.step"
    std::optional<ValueRef> trigger;   ///< fire-vs-hold predicate, if triggered
};

/// slot := value  (pass-through of a macro input)
struct AssignStmt {
    ValueRef src;
    std::int32_t dst_slot = -1;
};

/// if (c<counter> == 0) { ... until the matching GuardEnd ... }
/// Guards implement exactly-once firing of SDG nodes shared between
/// overlapping clusters (the paper's Figure 5 modulo counter).
struct GuardBegin {
    std::int32_t counter = -1;
};
struct GuardEnd {};

/// c<counter> := (c<counter> + 1) mod <mod>
struct BumpStmt {
    std::int32_t counter = -1;
    std::int32_t mod = 0;
};

using Stmt = std::variant<CallStmt, AssignStmt, GuardBegin, GuardEnd, BumpStmt>;

/// Per-kind statement totals of a statement list, function or whole code
/// unit — the walk behind line_count()/call_count() and the static cost
/// model (analysis/cost.hpp). Guard pairs count as one `guards` each for
/// GuardBegin and GuardEnd, matching the generated-pseudocode line count.
struct OpCounts {
    std::size_t calls = 0;
    std::size_t assigns = 0;
    std::size_t guards = 0; ///< GuardBegin + GuardEnd statements
    std::size_t bumps = 0;

    std::size_t total() const { return calls + assigns + guards + bumps; }
    OpCounts& operator+=(const OpCounts& o) {
        calls += o.calls;
        assigns += o.assigns;
        guards += o.guards;
        bumps += o.bumps;
        return *this;
    }
};

OpCounts count_ops(std::span<const Stmt> body);

/// A generated interface function: its exported signature, its body and the
/// value returned for each written output port (aligned with sig.writes).
struct GenFunction {
    InterfaceFunction sig;
    std::vector<Stmt> body;
    std::vector<ValueRef> returns;
};

/// The complete generated code of one macro block: the functions behind its
/// exported profile plus its persistent data (signal slots and guard
/// counters). Self-contained for printing: all display names are copied in.
struct CodeUnit {
    std::string block_name;
    std::vector<GenFunction> functions; ///< aligned with the exported profile
    std::size_t num_slots = 0;
    std::vector<std::string> slot_names;
    std::vector<std::int32_t> counter_mods; ///< per counter: its modulus
    std::vector<std::int32_t> sequential_subs; ///< sub indices needing init()
    std::vector<std::string> param_names;  ///< macro input port names
    std::vector<std::string> output_names; ///< macro output port names

    /// Number of statement lines (calls + assigns + guards + bumps + one
    /// signature and one return line per function) — the code-size measure
    /// of Section 5.
    std::size_t line_count() const;
    /// Number of call statements, counting replicated ones each time.
    std::size_t call_count() const;

    /// Paper-style pseudocode (Figures 5 and 6).
    std::string to_pseudocode() const;
};

OpCounts count_ops(const GenFunction& fn);
OpCounts count_ops(const CodeUnit& cu);

} // namespace sbd::codegen

#endif
