#include "core/contract.hpp"

#include <algorithm>

namespace sbd::codegen {

const char* to_string(ContractIssue::Kind k) {
    switch (k) {
    case ContractIssue::Kind::Structure: return "structure";
    case ContractIssue::Kind::MissingRead: return "missing-read";
    case ContractIssue::Kind::ExtraRead: return "extra-read";
    case ContractIssue::Kind::WrongWrite: return "wrong-write";
    case ContractIssue::Kind::MissingOrder: return "missing-order";
    case ContractIssue::Kind::UnjustifiedPdgEdge: return "unjustified-pdg-edge";
    }
    return "?";
}

bool any_fatal(const std::vector<ContractIssue>& issues) {
    return std::any_of(issues.begin(), issues.end(),
                       [](const ContractIssue& i) { return i.fatal; });
}

std::vector<ContractIssue> check_profile_contract(const MacroBlock& m,
                                                  std::span<const Profile* const> sub_profiles,
                                                  const Sdg& sdg, const Clustering& clustering,
                                                  const Profile& profile) {
    std::vector<ContractIssue> issues;
    const auto report = [&](ContractIssue::Kind kind, bool fatal, std::string msg) {
        issues.push_back(ContractIssue{kind, fatal, std::move(msg)});
    };
    const auto label = [&](graph::NodeId v) { return node_label(sdg, m, sub_profiles, v); };
    const std::string where = "macro '" + m.type_name() + "': ";

    const std::size_t num_clusters = clustering.clusters.size();
    if (profile.functions.size() != num_clusters) {
        report(ContractIssue::Kind::Structure, true,
               where + "profile exports " + std::to_string(profile.functions.size()) +
                   " functions for " + std::to_string(num_clusters) + " clusters");
        return issues; // everything below indexes functions by cluster
    }

    // Reads: function c must declare input i iff an SDG edge runs from
    // input node i directly into a node of cluster c. (Values needed only
    // transitively arrive through slots written by earlier functions.)
    for (std::size_t c = 0; c < num_clusters; ++c) {
        graph::Bitset expected(m.num_inputs());
        for (const auto v : clustering.clusters[c])
            for (const auto p : sdg.graph.predecessors(v))
                if (sdg.is_input(p)) expected.set(static_cast<std::size_t>(sdg.nodes[p].port));
        graph::Bitset declared(m.num_inputs());
        for (const std::size_t i : profile.functions[c].reads) {
            if (i >= m.num_inputs()) {
                report(ContractIssue::Kind::ExtraRead, true,
                       where + "function '" + profile.functions[c].name +
                           "' reads nonexistent input port " + std::to_string(i));
                continue;
            }
            declared.set(i);
        }
        for (std::size_t i = 0; i < m.num_inputs(); ++i) {
            if (expected.test(i) && !declared.test(i))
                report(ContractIssue::Kind::MissingRead, true,
                       where + "function '" + profile.functions[c].name +
                           "' omits input '" + m.input_name(i) +
                           "', which feeds a node of its cluster directly");
            if (!expected.test(i) && declared.test(i))
                report(ContractIssue::Kind::ExtraRead, true,
                       where + "function '" + profile.functions[c].name + "' declares input '" +
                           m.input_name(i) + "', but no node of its cluster consumes it");
        }
    }

    // Writes: output o is produced by the writer node's attributed cluster
    // and must be returned by exactly that function.
    const auto attribution = clustering.output_attribution(sdg);
    std::vector<std::int32_t> expected_writer(m.num_outputs(), -1);
    for (std::size_t o = 0; o < m.num_outputs(); ++o) {
        if (attribution[o].size() != 1) {
            report(ContractIssue::Kind::Structure, true,
                   where + "output '" + m.output_name(o) + "' is attributed to " +
                       std::to_string(attribution[o].size()) + " clusters (expected 1)");
            continue;
        }
        expected_writer[o] = static_cast<std::int32_t>(attribution[o].front());
    }
    for (std::size_t c = 0; c < num_clusters; ++c) {
        for (const std::size_t o : profile.functions[c].writes) {
            if (o >= m.num_outputs()) {
                report(ContractIssue::Kind::WrongWrite, true,
                       where + "function '" + profile.functions[c].name +
                           "' writes nonexistent output port " + std::to_string(o));
                continue;
            }
            if (expected_writer[o] >= 0 && static_cast<std::size_t>(expected_writer[o]) != c)
                report(ContractIssue::Kind::WrongWrite, true,
                       where + "function '" + profile.functions[c].name + "' returns output '" +
                           m.output_name(o) + "', whose writer node belongs to function '" +
                           profile.functions[expected_writer[o]].name + "'");
        }
    }
    for (std::size_t o = 0; o < m.num_outputs(); ++o) {
        if (expected_writer[o] < 0) continue;
        const auto& w = profile.functions[expected_writer[o]].writes;
        if (std::find(w.begin(), w.end(), o) == w.end())
            report(ContractIssue::Kind::WrongWrite, true,
                   where + "output '" + m.output_name(o) + "' is returned by no function " +
                       "(its writer node's cluster generates function '" +
                       profile.functions[expected_writer[o]].name + "')");
    }

    // Ordering soundness: for an SDG dataflow edge u -> v between internal
    // nodes, every cluster b containing v but not u must be preceded (in
    // the PDG's transitive closure) by some cluster containing u, or a
    // legal call order could run b before u's slot is written.
    graph::Digraph pdg(num_clusters);
    for (const auto& [a, b] : profile.pdg_edges) {
        if (a >= num_clusters || b >= num_clusters) {
            report(ContractIssue::Kind::Structure, true,
                   where + "PDG edge (" + std::to_string(a) + ", " + std::to_string(b) +
                       ") references a nonexistent function");
            continue;
        }
        pdg.add_edge(static_cast<graph::NodeId>(a), static_cast<graph::NodeId>(b));
    }
    const auto pdg_closure = pdg.transitive_closure();
    for (const auto u : sdg.internal_nodes) {
        const auto in_u = clustering.clusters_of(u);
        for (const auto v : sdg.graph.successors(u)) {
            if (!sdg.is_internal(v)) continue;
            for (const std::size_t b : clustering.clusters_of(v)) {
                if (std::find(in_u.begin(), in_u.end(), b) != in_u.end()) continue;
                const bool ordered = std::any_of(in_u.begin(), in_u.end(), [&](std::size_t a) {
                    return pdg_closure[a].test(b);
                });
                if (!ordered)
                    report(ContractIssue::Kind::MissingOrder, true,
                           where + "'" + label(v) + "' (function '" + profile.functions[b].name +
                               "') consumes '" + label(u) +
                               "', but no PDG constraint orders a producer function first");
            }
        }
    }

    // PDG justification: a declared edge (a, b) with no SDG reachability
    // from any node of a to any node of b over-constrains callers — it
    // costs reusability without buying correctness.
    const auto sdg_closure = sdg.graph.transitive_closure();
    for (const auto& [a, b] : profile.pdg_edges) {
        if (a >= num_clusters || b >= num_clusters) continue; // reported above
        bool justified = false;
        for (const auto u : clustering.clusters[a]) {
            for (const auto v : clustering.clusters[b])
                if (u == v || sdg_closure[u].test(v)) {
                    justified = true;
                    break;
                }
            if (justified) break;
        }
        if (!justified)
            report(ContractIssue::Kind::UnjustifiedPdgEdge, false,
                   where + "PDG edge '" + profile.functions[a].name + "' -> '" +
                       profile.functions[b].name +
                       "' is backed by no SDG dataflow (over-constrains callers)");
    }

    return issues;
}

} // namespace sbd::codegen
