#include "core/reuse.hpp"

#include "graph/digraph.hpp"

namespace sbd::codegen {

bool supports_feedback(const Profile& profile,
                       std::span<const std::pair<std::size_t, std::size_t>> loops) {
    graph::Digraph g(profile.functions.size());
    for (const auto& [a, b] : profile.pdg_edges)
        g.add_edge(static_cast<graph::NodeId>(a), static_cast<graph::NodeId>(b));
    for (const auto& [o, i] : loops) {
        const std::int32_t writer = profile.writer_of_output(o);
        if (writer < 0) continue; // unproduced output cannot close a loop
        for (const std::size_t reader : profile.readers_of_input(i)) {
            if (static_cast<std::size_t>(writer) == reader) return false; // self-dependency
            g.add_edge(static_cast<graph::NodeId>(writer), static_cast<graph::NodeId>(reader));
        }
    }
    return g.is_acyclic();
}

std::vector<std::pair<std::size_t, std::size_t>> legal_feedback_pairs(const Sdg& sdg) {
    std::vector<std::pair<std::size_t, std::size_t>> legal;
    for (std::size_t i = 0; i < sdg.num_inputs(); ++i) {
        const auto reach = sdg.graph.reachable_from(sdg.input_nodes[i]);
        for (std::size_t o = 0; o < sdg.num_outputs(); ++o)
            if (!reach.test(sdg.output_nodes[o])) legal.emplace_back(o, i);
    }
    return legal;
}

ReusabilityReport reusability(const Sdg& sdg, const Profile& profile) {
    ReusabilityReport r;
    const auto legal = legal_feedback_pairs(sdg);
    r.legal_contexts = legal.size();
    for (const auto& loop : legal) {
        const std::pair<std::size_t, std::size_t> one[] = {loop};
        if (supports_feedback(profile, one)) ++r.supported_contexts;
    }
    return r;
}

} // namespace sbd::codegen
