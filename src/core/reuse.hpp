#ifndef SBD_CORE_REUSE_HPP
#define SBD_CORE_REUSE_HPP

#include <span>
#include <utility>
#include <vector>

#include "core/profile.hpp"
#include "core/sdg.hpp"

namespace sbd::codegen {

/// Parent-level dependency analysis for an embedding: can a block with this
/// profile be used in a context that wires output port `o` back to input
/// port `i` (combinationally) for every pair in `loops`? True iff the
/// function-level graph (PDG edges plus writer(o) -> readers(i) edges per
/// loop) stays acyclic — exactly the check the paper's code-generation
/// step 1 performs in the enclosing diagram.
bool supports_feedback(const Profile& profile,
                       std::span<const std::pair<std::size_t, std::size_t>> loops);

/// All feedback pairs (o, i) that the diagram's true semantics allows, i.e.
/// output o does not depend on input i, so connecting o to i creates no
/// real dependency cycle.
std::vector<std::pair<std::size_t, std::size_t>> legal_feedback_pairs(const Sdg& sdg);

/// Quantified reusability of a profile against its block's SDG: how many of
/// the semantically legal single-wire feedback contexts the profile
/// supports. score() == 1 iff the profile achieves maximal reusability on
/// single-wire contexts.
struct ReusabilityReport {
    std::size_t legal_contexts = 0;
    std::size_t supported_contexts = 0;
    double score() const {
        return legal_contexts == 0
                   ? 1.0
                   : static_cast<double>(supported_contexts) / static_cast<double>(legal_contexts);
    }
};

ReusabilityReport reusability(const Sdg& sdg, const Profile& profile);

} // namespace sbd::codegen

#endif
