#include "core/codegen.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>

namespace sbd::codegen {

namespace {

std::string sanitize(std::string s) {
    for (char& c : s)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
    return s;
}

} // namespace

CodegenResult generate_code(const MacroBlock& m, std::span<const Profile* const> sub_profiles,
                            const Sdg& sdg, const Clustering& clustering) {
    const std::size_t num_clusters = clustering.num_clusters();

    // Node -> clusters membership; every internal node must be covered.
    std::vector<std::vector<std::size_t>> membership(sdg.graph.num_nodes());
    for (std::size_t c = 0; c < num_clusters; ++c)
        for (const auto v : clustering.clusters[c]) membership[v].push_back(c);
    for (const auto v : sdg.internal_nodes)
        if (membership[v].empty())
            throw std::logic_error("generate_code: internal node not covered by any cluster");

    // Guard-counter correctness: a node shared by several clusters fires on
    // the first call among them; its producers must then already have fired,
    // which holds iff each containing cluster also contains all its internal
    // predecessors.
    for (const auto v : sdg.internal_nodes) {
        if (membership[v].size() < 2) continue;
        for (const auto u : sdg.graph.predecessors(v)) {
            if (!sdg.is_internal(u)) continue;
            for (const std::size_t c : membership[v])
                if (!std::binary_search(clustering.clusters[c].begin(),
                                        clustering.clusters[c].end(), u))
                    throw std::logic_error(
                        "generate_code: shared node is not backward-closed in a cluster");
        }
    }

    CodegenResult out;
    CodeUnit& code = out.code;
    code.block_name = m.type_name();
    for (std::size_t i = 0; i < m.num_inputs(); ++i) code.param_names.push_back(m.input_name(i));
    for (std::size_t o = 0; o < m.num_outputs(); ++o)
        code.output_names.push_back(m.output_name(o));

    // Persistent slots: one per sub-block output port, plus one per
    // pass-through node.
    std::vector<std::vector<std::int32_t>> slot_of_sub(m.num_subs());
    for (std::size_t s = 0; s < m.num_subs(); ++s) {
        const Block& b = *m.sub(s).type;
        slot_of_sub[s].resize(b.num_outputs());
        for (std::size_t o = 0; o < b.num_outputs(); ++o) {
            slot_of_sub[s][o] = static_cast<std::int32_t>(code.num_slots++);
            code.slot_names.push_back(sanitize(m.sub(s).name) + "_" + b.output_name(o));
        }
    }
    std::vector<std::int32_t> slot_of_node(sdg.graph.num_nodes(), -1);
    for (const auto v : sdg.internal_nodes) {
        if (sdg.nodes[v].is_passthrough()) {
            slot_of_node[v] = static_cast<std::int32_t>(code.num_slots++);
            code.slot_names.push_back("pass_" + sanitize(m.output_name(sdg.nodes[v].port)));
        }
    }

    // Guard counters: one per sharing signature (set of clusters) of size
    // >= 2; the modulus is the signature size (Figure 5's modulo-2 counter
    // generalized).
    std::map<std::vector<std::size_t>, std::int32_t> counter_of_signature;
    for (const auto v : sdg.internal_nodes) {
        if (membership[v].size() < 2) continue;
        const auto [it, inserted] = counter_of_signature.try_emplace(
            membership[v], static_cast<std::int32_t>(code.counter_mods.size()));
        if (inserted) code.counter_mods.push_back(static_cast<std::int32_t>(membership[v].size()));
    }

    // The value feeding a sub-block input port or a macro output port.
    const auto source_value = [&](const Endpoint& dst) -> ValueRef {
        const Connection* c = m.writer_of(dst);
        assert(c != nullptr);
        if (c->src.kind == Endpoint::Kind::MacroInput) return ValueRef::param(c->src.port);
        return ValueRef::slot(slot_of_sub[c->src.sub][c->src.port]);
    };

    const auto topo = sdg.graph.topological_order();
    if (!topo) throw std::logic_error("generate_code: SDG is cyclic");
    std::vector<std::size_t> topo_pos(sdg.graph.num_nodes());
    for (std::size_t i = 0; i < topo->size(); ++i) topo_pos[(*topo)[i]] = i;

    // Which outputs each cluster writes: the writer node of output o is its
    // unique internal predecessor.
    std::vector<std::vector<std::size_t>> cluster_writes(num_clusters);
    std::vector<ValueRef> output_value(m.num_outputs());
    const auto attribution = clustering.output_attribution(sdg);
    for (std::size_t o = 0; o < m.num_outputs(); ++o) {
        const auto& preds = sdg.graph.predecessors(sdg.output_nodes[o]);
        assert(preds.size() == 1);
        const auto writer = preds[0];
        if (sdg.nodes[writer].is_passthrough()) {
            output_value[o] = ValueRef::slot(slot_of_node[writer]);
        } else {
            const Connection* c =
                m.writer_of(Endpoint{Endpoint::Kind::MacroOutput, -1, static_cast<std::int32_t>(o)});
            assert(c != nullptr && c->src.kind == Endpoint::Kind::SubOutput);
            output_value[o] = ValueRef::slot(slot_of_sub[c->src.sub][c->src.port]);
        }
        // With overlap the writer may live in several clusters; the output
        // is returned by the attributed one (smallest input cone), anything
        // else would export false input-output dependencies.
        assert(attribution[o].size() == 1);
        cluster_writes[attribution[o].front()].push_back(o);
    }

    // Emit one function per cluster.
    out.profile.sequential = false;
    for (std::size_t s = 0; s < m.num_subs(); ++s)
        if (sub_profiles[s]->sequential) {
            out.profile.sequential = true;
            code.sequential_subs.push_back(static_cast<std::int32_t>(s));
        }
    if (!code.counter_mods.empty()) out.profile.sequential = true;

    std::size_t get_count = 0, aux_count = 0;
    for (std::size_t c = 0; c < num_clusters; ++c)
        if (!cluster_writes[c].empty()) ++get_count;
    std::size_t get_seen = 0;

    for (std::size_t c = 0; c < num_clusters; ++c) {
        GenFunction fn;
        std::vector<graph::NodeId> nodes = clustering.clusters[c];
        std::sort(nodes.begin(), nodes.end(),
                  [&](graph::NodeId a, graph::NodeId b) { return topo_pos[a] < topo_pos[b]; });

        std::int32_t open_counter = -1;
        std::vector<std::int32_t> used_counters;
        graph::Bitset reads(m.num_inputs());
        for (const auto v : nodes) {
            // Guard management for shared nodes.
            std::int32_t want = -1;
            if (membership[v].size() >= 2) want = counter_of_signature.at(membership[v]);
            if (want != open_counter) {
                if (open_counter >= 0) fn.body.emplace_back(GuardEnd{});
                if (want >= 0) {
                    fn.body.emplace_back(GuardBegin{want});
                    if (std::find(used_counters.begin(), used_counters.end(), want) ==
                        used_counters.end())
                        used_counters.push_back(want);
                }
                open_counter = want;
            }
            const SdgNode& n = sdg.nodes[v];
            if (n.is_passthrough()) {
                fn.body.emplace_back(
                    AssignStmt{ValueRef::param(n.pt_input), slot_of_node[v]});
                reads.set(static_cast<std::size_t>(n.pt_input));
                continue;
            }
            const Profile& sp = *sub_profiles[n.sub];
            const InterfaceFunction& sf = sp.functions[n.fn];
            CallStmt call;
            call.sub = n.sub;
            call.fn = n.fn;
            call.callee = m.sub(n.sub).name + "." + sf.name;
            for (const std::size_t port : sf.reads) {
                const ValueRef vr = source_value(Endpoint{Endpoint::Kind::SubInput, n.sub,
                                                          static_cast<std::int32_t>(port)});
                if (vr.kind == ValueRef::Kind::Param)
                    reads.set(static_cast<std::size_t>(vr.index));
                call.args.push_back(vr);
            }
            for (const std::size_t port : sf.writes)
                call.results.push_back(slot_of_sub[n.sub][port]);
            if (const auto& trig = m.sub(n.sub).trigger) {
                // Triggered sub-block: predicate the call; a skipped call
                // leaves the result slots holding their previous values.
                ValueRef tv = trig->kind == Endpoint::Kind::MacroInput
                                  ? ValueRef::param(trig->port)
                                  : ValueRef::slot(slot_of_sub[trig->sub][trig->port]);
                if (tv.kind == ValueRef::Kind::Param)
                    reads.set(static_cast<std::size_t>(tv.index));
                call.trigger = tv;
            }
            fn.body.emplace_back(std::move(call));
        }
        if (open_counter >= 0) fn.body.emplace_back(GuardEnd{});
        for (const std::int32_t ctr : used_counters)
            fn.body.emplace_back(BumpStmt{ctr, code.counter_mods[ctr]});

        for (const std::size_t i : reads.to_indices()) fn.sig.reads.push_back(i);
        fn.sig.writes = cluster_writes[c];
        std::sort(fn.sig.writes.begin(), fn.sig.writes.end());
        for (const std::size_t o : fn.sig.writes) fn.returns.push_back(output_value[o]);

        if (num_clusters == 1)
            fn.sig.name = "step"; // monolithic-style single interface function
        else if (!fn.sig.writes.empty())
            fn.sig.name = get_count == 1 ? "get" : "get" + std::to_string(++get_seen);
        else
            fn.sig.name = aux_count++ == 0 ? "step" : "step" + std::to_string(aux_count);

        out.profile.functions.push_back(fn.sig);
        code.functions.push_back(std::move(fn));
    }

    out.profile.pdg_edges = cluster_pdg_edges(sdg, clustering);
    {
        graph::Digraph pdg(num_clusters);
        for (const auto& [a, b] : out.profile.pdg_edges)
            pdg.add_edge(static_cast<graph::NodeId>(a), static_cast<graph::NodeId>(b));
        if (!pdg.is_acyclic())
            throw std::logic_error("generate_code: synthesized PDG is cyclic");
    }
    return out;
}

} // namespace sbd::codegen
