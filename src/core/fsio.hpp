#ifndef SBD_CORE_FSIO_HPP
#define SBD_CORE_FSIO_HPP

#include <cstdint>
#include <filesystem>
#include <span>

namespace sbd::fsio {

/// Durable-publish primitives shared by everything that writes
/// crash-survivable files (the profile cache, the native artifact store,
/// the durable journal and checkpoint store). The discipline is always the
/// same: write a temp file, fsync the file, atomically rename it into
/// place, then fsync the parent directory so the rename itself survives a
/// power cut. POSIX rename gives readers old/none/new; the two fsyncs turn
/// that into old/new across a crash.
///
/// All helpers are noexcept and report failure by returning false: every
/// caller in this codebase treats a failed durable write as a degradation
/// (recompute, recompile, coded rejection), never as a reason to die.

/// fsync(2) an already-open descriptor.
bool fsync_fd(int fd) noexcept;

/// Open `path` read-only and fsync it. Works for regular files.
bool fsync_file(const std::filesystem::path& path) noexcept;

/// fsync the directory containing `path`, making a completed rename of
/// `path` durable. Falls back to `.` when the path has no parent.
bool fsync_parent_dir(const std::filesystem::path& path) noexcept;

/// Publish an existing temp file at its final path: fsync(tmp), rename
/// tmp -> final, fsync(parent dir). With `durable_sync` false the fsyncs
/// are skipped and this is a plain atomic rename (the pre-crash-safety
/// behaviour, kept for callers with an explicit fast mode). On failure the
/// temp file is left in place for the caller's cleanup path.
bool publish_file_durable(const std::filesystem::path& tmp,
                          const std::filesystem::path& final_path,
                          bool durable_sync = true) noexcept;

/// Write `bytes` to `tmp`, then publish_file_durable(tmp, final_path).
/// Removes `tmp` (best effort) on failure.
bool write_file_durable(const std::filesystem::path& final_path,
                        const std::filesystem::path& tmp,
                        std::span<const std::uint8_t> bytes,
                        bool durable_sync = true) noexcept;

} // namespace sbd::fsio

#endif
