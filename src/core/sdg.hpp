#ifndef SBD_CORE_SDG_HPP
#define SBD_CORE_SDG_HPP

#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/bitset.hpp"
#include "graph/digraph.hpp"
#include "sbd/block.hpp"
#include "core/profile.hpp"

namespace sbd::codegen {

/// Raised when the SDG of a macro block has a dependency cycle, i.e. modular
/// code generation fails and the block would have to be flattened (paper,
/// code generation step 1).
class SdgCycleError : public std::runtime_error {
public:
    explicit SdgCycleError(const std::string& block_name)
        : std::runtime_error("scheduling dependency graph of macro block '" + block_name +
                             "' is cyclic: modular code generation rejected"),
          block_name_(block_name) {}
    const std::string& block_name() const { return block_name_; }

private:
    std::string block_name_;
};

/// One node of the scheduling dependency graph. Following Section 6's
/// formalization, V = V_in (one node per macro input port) + V_out (one node
/// per macro output port) + V_int. Internal nodes are either an interface
/// function of a sub-block instance or a pass-through node inserted for a
/// direct input-to-output wire (the paper's "dummy internal node", needed
/// because no direct edge between an input node and an output node is
/// allowed).
struct SdgNode {
    enum class Kind : std::uint8_t { Input, Output, Internal };
    Kind kind = Kind::Internal;
    std::int32_t port = -1; ///< macro port for Input/Output nodes
    std::int32_t sub = -1;  ///< sub-block index; -1 for a pass-through node
    std::int32_t fn = -1;   ///< interface-function index within the sub's profile
    /// For pass-through nodes: the macro input port copied to `port`.
    std::int32_t pt_input = -1;

    bool is_passthrough() const { return kind == Kind::Internal && sub < 0; }
};

/// The scheduling dependency graph of a macro block, together with the node
/// classification and convenience indices.
struct Sdg {
    graph::Digraph graph;
    std::vector<SdgNode> nodes;
    std::vector<graph::NodeId> input_nodes;  ///< per macro input port
    std::vector<graph::NodeId> output_nodes; ///< per macro output port
    std::vector<graph::NodeId> internal_nodes;

    std::size_t num_inputs() const { return input_nodes.size(); }
    std::size_t num_outputs() const { return output_nodes.size(); }

    bool is_input(graph::NodeId v) const { return nodes[v].kind == SdgNode::Kind::Input; }
    bool is_output(graph::NodeId v) const { return nodes[v].kind == SdgNode::Kind::Output; }
    bool is_internal(graph::NodeId v) const { return nodes[v].kind == SdgNode::Kind::Internal; }

    /// Human-readable node labels ("A.step", "in:x1", ...).
    std::vector<std::string> labels() const;

    /// Input-output dependency pairs (i, o), port-indexed, of the graph
    /// itself: o truly depends on i. This is the baseline against which
    /// clusterings must not add pairs (maximal reusability).
    std::vector<std::pair<std::size_t, std::size_t>> io_dependencies() const;
};

/// Builds the SDG of `m` from the profiles of its sub-blocks (one profile
/// per sub, in order). Throws SdgCycleError if the result is cyclic and
/// ModelError if the diagram is structurally invalid.
///
/// `sub_labels` (optional, same length as profiles) supplies instance names
/// for labels; defaults to the macro's instance names.
Sdg build_sdg(const MacroBlock& m, std::span<const Profile* const> sub_profiles);

/// As build_sdg but returns the graph even if cyclic (for tests and for
/// reporting); *cyclic is set accordingly.
Sdg build_sdg_unchecked(const MacroBlock& m, std::span<const Profile* const> sub_profiles,
                        bool* cyclic);

/// The macro-level label of an SDG node (needs the macro for port/instance
/// names).
std::string node_label(const Sdg& sdg, const MacroBlock& m,
                       std::span<const Profile* const> sub_profiles, graph::NodeId v);

} // namespace sbd::codegen

#endif
