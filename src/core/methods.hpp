#ifndef SBD_CORE_METHODS_HPP
#define SBD_CORE_METHODS_HPP

#include <cstdint>

#include "core/clustering.hpp"
#include "sat/dimacs.hpp"

namespace sbd::codegen {

/// Tuning knobs for the clustering methods.
struct ClusterOptions {
    /// Dynamic method: fold the trailing update cluster into an output
    /// cluster when that adds no false dependencies (keeps the function
    /// count at the theoretical minimum).
    bool fold_update_into_get = true;
    /// SAT method: first k to try; -1 = derive the lower bound from the
    /// dynamic method's cluster count.
    int sat_start_k = -1;
    /// SAT method: add symmetry-breaking clauses (cluster ids ordered by
    /// minimal member node).
    bool sat_symmetry_breaking = true;
    /// SAT method: per-F_k conflict budget; 0 = unlimited. When a solve
    /// trips the budget, cluster_disjoint_sat either throws the coded
    /// resilience::BudgetExhausted or, with sat_budget_degrade, walks the
    /// degradation ladder below.
    std::uint64_t sat_conflict_budget = 0;
    /// Debug gate: after generating each macro block's code, re-check the
    /// exported profile against the block's SDG (core/contract.hpp) and
    /// throw std::logic_error on any fatal finding. Off by default; turned
    /// on by sbdc --verify-contracts and the test suite.
    bool verify_contracts = false;
    /// SAT method: on conflict-budget exhaustion, degrade to the step-get
    /// clustering (or, should that fail validation, the always-valid
    /// dynamic clustering) instead of throwing — a valid but possibly
    /// non-optimal result, flagged via SatClusterStats::budget_exhausted
    /// and diagnostic SBD021.
    bool sat_budget_degrade = false;
};

/// Canonical serialization of *every* ClusterOptions field, in declaration
/// order, as "name=value;..." — the single source of truth shared by the
/// profile-cache fingerprint (core/fingerprint.hpp) and the --stats output.
/// Guarded by a static_assert on sizeof(ClusterOptions) in methods.cpp: a
/// new field that is not serialized here would silently produce stale cache
/// hits, so adding one without updating this function fails to compile.
std::string canonical_options(const ClusterOptions& opts);

/// Statistics of the iterated-SAT optimal disjoint clustering (Section 7).
struct SatClusterStats {
    std::size_t iterations = 0; ///< number of F_k instances solved
    std::size_t first_k = 0;    ///< k of the first (smallest) instance
    std::size_t final_k = 0;    ///< k of the satisfiable instance
    std::size_t vars = 0;       ///< variables of the final instance
    std::size_t clauses = 0;    ///< clauses of the final instance
    std::uint64_t conflicts = 0;
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    /// The conflict budget tripped; with sat_budget_degrade the clustering
    /// came from the degradation ladder, otherwise BudgetExhausted was
    /// thrown after filling these stats.
    bool budget_exhausted = false;
};

/// One cluster containing every internal node: the folk "single step()"
/// code generation from the paper's Introduction. Maximal modularity, no
/// replication, but generally adds false input-output dependencies.
Clustering cluster_monolithic(const Sdg& sdg);

/// DATE'08 step-get: one cluster with the union of all output cones (the
/// "get"/output function) and one with the remaining nodes (the
/// "step"/update function). At most two functions; no replication; not
/// maximally reusable in general.
Clustering cluster_stepget(const Sdg& sdg);

/// DATE'08 dynamic method: one (possibly overlapping) cluster per group of
/// outputs with identical input-dependency sets — each cluster is the union
/// of the backward cones of its outputs — plus, if needed, one update
/// cluster for internal nodes feeding no output. Maximal reusability with
/// the minimal number of interface functions; overlap causes replication.
Clustering cluster_dynamic(const Sdg& sdg, const ClusterOptions& opts = {});

/// One cluster per internal node (the fine-grain interface of Hainque et
/// al.): always valid, maximally reusable, zero replication, but the worst
/// possible modularity.
Clustering cluster_singletons(const Sdg& sdg);

/// Polynomial disjoint heuristic: processes internal nodes in topological
/// order, placing each into the first existing cluster that keeps the
/// partial clustering valid. Zero replication, maximal reusability, but no
/// optimality guarantee.
Clustering cluster_disjoint_greedy(const Sdg& sdg);

/// This paper's optimal disjoint clustering: minimal number of
/// non-overlapping clusters with maximal reusability, solved by iterating
/// the SAT encoding F_k of Figure 8 over increasing k (Section 7).
Clustering cluster_disjoint_sat(const Sdg& sdg, const ClusterOptions& opts = {},
                                SatClusterStats* stats = nullptr);

/// The propositional formula F_k of the paper's Figure 8 in CNF form, for
/// interchange with external SAT solvers (DIMACS via sat::to_dimacs).
/// Variable layout, 0-based: X[b][j] = b*k + j for internal-node index b
/// (position in sdg.internal_nodes), then Y[o][j] = |Vint|*k + o*k + j,
/// then Z[i][j] = (|Vint| + |Vout|)*k + i*k + j. The formula is
/// satisfiable iff an almost-valid clustering with exactly k clusters
/// exists (Lemma 6); symmetry-breaking clauses are appended when enabled
/// in `opts` (they preserve satisfiability).
sat::Cnf encode_fk(const Sdg& sdg, std::size_t k, const ClusterOptions& opts = {});

/// Dispatch by method id.
Clustering cluster(const Sdg& sdg, Method method, const ClusterOptions& opts = {},
                   SatClusterStats* sat_stats = nullptr);

} // namespace sbd::codegen

#endif
