#ifndef SBD_CORE_PROFILE_HPP
#define SBD_CORE_PROFILE_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sbd/block.hpp"
#include "sbd/opaque.hpp"

namespace sbd::codegen {

/// One interface function of a block profile (Section 4). A function reads
/// a subset of the block's input ports and produces a subset of its output
/// ports; sequential blocks' functions may additionally update state.
struct InterfaceFunction {
    std::string name;
    std::vector<std::size_t> reads;  ///< block input port indices, sorted
    std::vector<std::size_t> writes; ///< block output port indices, sorted
};

/// The profile of a block: its interface functions plus the profile
/// dependency graph (PDG). Edge (a, b) means function a must be called
/// before function b within every synchronous instant. The calling contract
/// is the paper's: each interface function is called exactly once per
/// instant, in any order consistent with the PDG.
struct Profile {
    std::vector<InterfaceFunction> functions;
    std::vector<std::pair<std::size_t, std::size_t>> pdg_edges;
    bool sequential = false; ///< block has state; an init() is generated

    /// Index of the (unique) function writing output port `o`, or -1.
    std::int32_t writer_of_output(std::size_t o) const;
    /// All function indices reading input port `i`.
    std::vector<std::size_t> readers_of_input(std::size_t i) const;

    std::string to_string() const;
};

/// The intrinsic profile of an atomic block (Section 4, Figure 3):
///  - combinational:      step(all inputs) -> all outputs
///  - sequential:         step(all inputs) -> all outputs, updates state
///  - Moore-sequential:   get() -> all outputs;  step(all inputs) updates
///                        state;  PDG: get before step
Profile atomic_profile(const AtomicBlock& block);

/// The declared profile of an interface-only black box: its functions and
/// call-order constraints verbatim.
Profile opaque_profile(const OpaqueBlock& block);

} // namespace sbd::codegen

#endif
