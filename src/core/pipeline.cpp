#include "core/pipeline.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <thread>

#include "core/contract.hpp"
#include "core/fsio.hpp"
#include "obs/trace.hpp"
#include "resilience/fault.hpp"
#include "sbd/opaque.hpp"

namespace sbd::codegen {

namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_since(Clock::time_point t0) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count());
}

// ------------------------------------------------------------- wire format
//
// Cache record = header + payload + trailer:
//   magic "SBDP" | version u32 | key.hi u64 | key.lo u64 | payload_len u64
//   payload (serialize_entry)
//   checksum.hi u64 | checksum.lo u64      (Hasher over the payload bytes)
// All integers little-endian. Any structural problem — short file, bad
// magic/version, key mismatch, checksum mismatch, or a payload that fails
// deserialize_entry's bounds checks — downgrades to a recompute.

constexpr char kMagic[4] = {'S', 'B', 'D', 'P'};
constexpr std::uint32_t kFormatVersion = 2; // v2: SatClusterStats::budget_exhausted
/// Upper bound on any element count in a record; rejects "billions of
/// clusters" style garbage before it turns into an allocation.
constexpr std::uint64_t kSaneCount = 1ull << 24;

struct Writer {
    std::vector<std::uint8_t> buf;

    void u8(std::uint8_t x) { buf.push_back(x); }
    void u32(std::uint32_t x) {
        for (int i = 0; i < 4; ++i) buf.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
    }
    void u64(std::uint64_t x) {
        for (int i = 0; i < 8; ++i) buf.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
    }
    void i32(std::int32_t x) { u32(static_cast<std::uint32_t>(x)); }
    void str(const std::string& s) {
        u64(s.size());
        buf.insert(buf.end(), s.begin(), s.end());
    }
    void size_vec(std::span<const std::size_t> v) {
        u64(v.size());
        for (const auto x : v) u64(x);
    }
};

/// Thrown (internally only) on any malformed byte sequence.
struct CorruptRecord : std::runtime_error {
    CorruptRecord() : std::runtime_error("corrupt cache record") {}
};

struct Reader {
    std::span<const std::uint8_t> data;
    std::size_t pos = 0;

    void need(std::size_t n) const {
        if (pos + n > data.size()) throw CorruptRecord();
    }
    std::uint8_t u8() {
        need(1);
        return data[pos++];
    }
    std::uint32_t u32() {
        need(4);
        std::uint32_t x = 0;
        for (int i = 0; i < 4; ++i) x |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
        return x;
    }
    std::uint64_t u64() {
        need(8);
        std::uint64_t x = 0;
        for (int i = 0; i < 8; ++i) x |= static_cast<std::uint64_t>(data[pos++]) << (8 * i);
        return x;
    }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::uint64_t count() {
        const std::uint64_t n = u64();
        if (n > kSaneCount) throw CorruptRecord();
        return n;
    }
    std::string str() {
        const std::uint64_t n = count();
        need(n);
        std::string s(reinterpret_cast<const char*>(data.data() + pos), n);
        pos += n;
        return s;
    }
    std::vector<std::size_t> size_vec() {
        const std::uint64_t n = count();
        std::vector<std::size_t> v(n);
        for (auto& x : v) x = u64();
        return v;
    }
};

void write_interface_fn(Writer& w, const InterfaceFunction& fn) {
    w.str(fn.name);
    w.size_vec(fn.reads);
    w.size_vec(fn.writes);
}

InterfaceFunction read_interface_fn(Reader& r) {
    InterfaceFunction fn;
    fn.name = r.str();
    fn.reads = r.size_vec();
    fn.writes = r.size_vec();
    return fn;
}

void write_profile(Writer& w, const Profile& p) {
    w.u64(p.functions.size());
    for (const auto& fn : p.functions) write_interface_fn(w, fn);
    w.u64(p.pdg_edges.size());
    for (const auto& [a, b] : p.pdg_edges) {
        w.u64(a);
        w.u64(b);
    }
    w.u8(p.sequential ? 1 : 0);
}

Profile read_profile(Reader& r) {
    Profile p;
    const auto nf = r.count();
    p.functions.reserve(nf);
    for (std::uint64_t i = 0; i < nf; ++i) p.functions.push_back(read_interface_fn(r));
    const auto ne = r.count();
    p.pdg_edges.reserve(ne);
    for (std::uint64_t i = 0; i < ne; ++i) {
        const auto a = r.u64();
        const auto b = r.u64();
        p.pdg_edges.emplace_back(a, b);
    }
    p.sequential = r.u8() != 0;
    return p;
}

void write_sdg(Writer& w, const Sdg& s) {
    w.u64(s.graph.num_nodes());
    for (const SdgNode& n : s.nodes) {
        w.u8(static_cast<std::uint8_t>(n.kind));
        w.i32(n.port);
        w.i32(n.sub);
        w.i32(n.fn);
        w.i32(n.pt_input);
    }
    // Edges grouped by source, successor lists in stored order, so the
    // rebuilt adjacency is identical (to_dot and every traversal agree).
    w.u64(s.graph.num_edges());
    for (graph::NodeId u = 0; u < s.graph.num_nodes(); ++u)
        for (const graph::NodeId v : s.graph.successors(u)) {
            w.u32(u);
            w.u32(v);
        }
    w.size_vec(std::span<const std::size_t>{}); // reserved
    w.u64(s.input_nodes.size());
    for (const auto v : s.input_nodes) w.u32(v);
    w.u64(s.output_nodes.size());
    for (const auto v : s.output_nodes) w.u32(v);
    w.u64(s.internal_nodes.size());
    for (const auto v : s.internal_nodes) w.u32(v);
}

Sdg read_sdg(Reader& r) {
    Sdg s;
    const auto n = r.count();
    s.graph = graph::Digraph(n);
    s.nodes.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        SdgNode node;
        const auto kind = r.u8();
        if (kind > 2) throw CorruptRecord();
        node.kind = static_cast<SdgNode::Kind>(kind);
        node.port = r.i32();
        node.sub = r.i32();
        node.fn = r.i32();
        node.pt_input = r.i32();
        s.nodes.push_back(node);
    }
    const auto ne = r.count();
    for (std::uint64_t i = 0; i < ne; ++i) {
        const auto u = r.u32();
        const auto v = r.u32();
        if (u >= n || v >= n) throw CorruptRecord();
        s.graph.add_edge(u, v);
    }
    (void)r.size_vec(); // reserved
    const auto read_ids = [&](std::vector<graph::NodeId>& out) {
        const auto k = r.count();
        out.reserve(k);
        for (std::uint64_t i = 0; i < k; ++i) {
            const auto v = r.u32();
            if (v >= n) throw CorruptRecord();
            out.push_back(v);
        }
    };
    read_ids(s.input_nodes);
    read_ids(s.output_nodes);
    read_ids(s.internal_nodes);
    return s;
}

void write_clustering(Writer& w, const Clustering& c) {
    w.u8(static_cast<std::uint8_t>(c.method));
    w.u64(c.clusters.size());
    for (const auto& cl : c.clusters) {
        w.u64(cl.size());
        for (const auto v : cl) w.u32(v);
    }
}

Clustering read_clustering(Reader& r) {
    Clustering c;
    const auto m = r.u8();
    if (m > static_cast<std::uint8_t>(Method::Singletons)) throw CorruptRecord();
    c.method = static_cast<Method>(m);
    const auto k = r.count();
    c.clusters.reserve(k);
    for (std::uint64_t i = 0; i < k; ++i) {
        const auto sz = r.count();
        std::vector<graph::NodeId> cl(sz);
        for (auto& v : cl) v = r.u32();
        c.clusters.push_back(std::move(cl));
    }
    return c;
}

void write_value_ref(Writer& w, const ValueRef& v) {
    w.u8(static_cast<std::uint8_t>(v.kind));
    w.i32(v.index);
}

ValueRef read_value_ref(Reader& r) {
    ValueRef v;
    const auto k = r.u8();
    if (k > 1) throw CorruptRecord();
    v.kind = static_cast<ValueRef::Kind>(k);
    v.index = r.i32();
    return v;
}

void write_stmt(Writer& w, const Stmt& stmt) {
    if (const auto* call = std::get_if<CallStmt>(&stmt)) {
        w.u8(0);
        w.i32(call->sub);
        w.i32(call->fn);
        w.u64(call->args.size());
        for (const auto& a : call->args) write_value_ref(w, a);
        w.u64(call->results.size());
        for (const auto s : call->results) w.i32(s);
        w.str(call->callee);
        w.u8(call->trigger ? 1 : 0);
        if (call->trigger) write_value_ref(w, *call->trigger);
    } else if (const auto* assign = std::get_if<AssignStmt>(&stmt)) {
        w.u8(1);
        write_value_ref(w, assign->src);
        w.i32(assign->dst_slot);
    } else if (const auto* gb = std::get_if<GuardBegin>(&stmt)) {
        w.u8(2);
        w.i32(gb->counter);
    } else if (std::get_if<GuardEnd>(&stmt) != nullptr) {
        w.u8(3);
    } else {
        const auto& bump = std::get<BumpStmt>(stmt);
        w.u8(4);
        w.i32(bump.counter);
        w.i32(bump.mod);
    }
}

Stmt read_stmt(Reader& r) {
    switch (r.u8()) {
    case 0: {
        CallStmt call;
        call.sub = r.i32();
        call.fn = r.i32();
        const auto na = r.count();
        call.args.reserve(na);
        for (std::uint64_t i = 0; i < na; ++i) call.args.push_back(read_value_ref(r));
        const auto nr = r.count();
        call.results.reserve(nr);
        for (std::uint64_t i = 0; i < nr; ++i) call.results.push_back(r.i32());
        call.callee = r.str();
        if (r.u8() != 0) call.trigger = read_value_ref(r);
        return call;
    }
    case 1: {
        AssignStmt a;
        a.src = read_value_ref(r);
        a.dst_slot = r.i32();
        return a;
    }
    case 2: {
        GuardBegin g;
        g.counter = r.i32();
        return g;
    }
    case 3: return GuardEnd{};
    case 4: {
        BumpStmt b;
        b.counter = r.i32();
        b.mod = r.i32();
        return b;
    }
    default: throw CorruptRecord();
    }
}

void write_code(Writer& w, const CodeUnit& c) {
    w.str(c.block_name);
    w.u64(c.functions.size());
    for (const auto& fn : c.functions) {
        write_interface_fn(w, fn.sig);
        w.u64(fn.body.size());
        for (const auto& s : fn.body) write_stmt(w, s);
        w.u64(fn.returns.size());
        for (const auto& v : fn.returns) write_value_ref(w, v);
    }
    w.u64(c.num_slots);
    w.u64(c.slot_names.size());
    for (const auto& s : c.slot_names) w.str(s);
    w.u64(c.counter_mods.size());
    for (const auto m : c.counter_mods) w.i32(m);
    w.u64(c.sequential_subs.size());
    for (const auto s : c.sequential_subs) w.i32(s);
    w.u64(c.param_names.size());
    for (const auto& s : c.param_names) w.str(s);
    w.u64(c.output_names.size());
    for (const auto& s : c.output_names) w.str(s);
}

CodeUnit read_code(Reader& r) {
    CodeUnit c;
    c.block_name = r.str();
    const auto nf = r.count();
    c.functions.reserve(nf);
    for (std::uint64_t i = 0; i < nf; ++i) {
        GenFunction fn;
        fn.sig = read_interface_fn(r);
        const auto nb = r.count();
        fn.body.reserve(nb);
        for (std::uint64_t j = 0; j < nb; ++j) fn.body.push_back(read_stmt(r));
        const auto nr = r.count();
        fn.returns.reserve(nr);
        for (std::uint64_t j = 0; j < nr; ++j) fn.returns.push_back(read_value_ref(r));
        c.functions.push_back(std::move(fn));
    }
    c.num_slots = r.count();
    auto read_strs = [&](std::vector<std::string>& out) {
        const auto k = r.count();
        out.reserve(k);
        for (std::uint64_t i = 0; i < k; ++i) out.push_back(r.str());
    };
    read_strs(c.slot_names);
    const auto nm = r.count();
    c.counter_mods.reserve(nm);
    for (std::uint64_t i = 0; i < nm; ++i) c.counter_mods.push_back(r.i32());
    const auto ns = r.count();
    c.sequential_subs.reserve(ns);
    for (std::uint64_t i = 0; i < ns; ++i) c.sequential_subs.push_back(r.i32());
    read_strs(c.param_names);
    read_strs(c.output_names);
    return c;
}

Fingerprint payload_checksum(std::span<const std::uint8_t> payload) {
    Hasher h;
    h.bytes(payload);
    return h.digest();
}

} // namespace

std::vector<std::uint8_t> serialize_entry(const CacheEntry& entry) {
    Writer w;
    write_profile(w, entry.profile);
    w.u8(entry.sdg ? 1 : 0);
    if (entry.sdg) write_sdg(w, *entry.sdg);
    w.u8(entry.clustering ? 1 : 0);
    if (entry.clustering) write_clustering(w, *entry.clustering);
    w.u8(entry.code ? 1 : 0);
    if (entry.code) write_code(w, *entry.code);
    const SatClusterStats& d = entry.sat_delta;
    w.u64(d.iterations);
    w.u64(d.first_k);
    w.u64(d.final_k);
    w.u64(d.vars);
    w.u64(d.clauses);
    w.u64(d.conflicts);
    w.u64(d.decisions);
    w.u64(d.propagations);
    w.u8(d.budget_exhausted ? 1 : 0);
    return std::move(w.buf);
}

std::optional<CacheEntry> deserialize_entry(std::span<const std::uint8_t> payload) {
    try {
        Reader r{payload};
        CacheEntry e;
        e.profile = read_profile(r);
        if (r.u8() != 0) e.sdg = read_sdg(r);
        if (r.u8() != 0) e.clustering = read_clustering(r);
        if (r.u8() != 0) e.code = read_code(r);
        e.sat_delta.iterations = r.u64();
        e.sat_delta.first_k = r.u64();
        e.sat_delta.final_k = r.u64();
        e.sat_delta.vars = r.u64();
        e.sat_delta.clauses = r.u64();
        e.sat_delta.conflicts = r.u64();
        e.sat_delta.decisions = r.u64();
        e.sat_delta.propagations = r.u64();
        e.sat_delta.budget_exhausted = r.u8() != 0;
        if (r.pos != payload.size()) return std::nullopt; // trailing garbage
        return e;
    } catch (const CorruptRecord&) {
        return std::nullopt;
    }
}

// ------------------------------------------------------------ PipelineStats

std::string PipelineStats::to_json() const {
    char buf[1536];
    std::snprintf(
        buf, sizeof(buf),
        "{\"cache\": {\"mem_hits\": %llu, \"mem_misses\": %llu, \"evictions\": %llu, "
        "\"disk_hits\": %llu, \"disk_misses\": %llu, \"disk_rejects\": %llu, "
        "\"disk_stores\": %llu}, "
        "\"resilience\": {\"disk_retries\": %llu, \"disk_backoff_ns\": %llu, "
        "\"store_drops\": %llu, \"deadline_misses\": %llu}, "
        "\"work\": {\"macro_compiles\": %llu, \"macro_reuses\": %llu, "
        "\"atomic_profiles\": %llu, \"hit_rate\": %.4f}, "
        "\"timing_ns\": {\"fingerprint\": %llu, \"sdg\": %llu, \"cluster\": %llu, "
        "\"codegen\": %llu, \"contract\": %llu, \"disk\": %llu, \"total\": %llu}}",
        static_cast<unsigned long long>(mem_hits), static_cast<unsigned long long>(mem_misses),
        static_cast<unsigned long long>(evictions), static_cast<unsigned long long>(disk_hits),
        static_cast<unsigned long long>(disk_misses),
        static_cast<unsigned long long>(disk_rejects),
        static_cast<unsigned long long>(disk_stores),
        static_cast<unsigned long long>(disk_retries),
        static_cast<unsigned long long>(disk_backoff_ns),
        static_cast<unsigned long long>(store_drops),
        static_cast<unsigned long long>(deadline_misses),
        static_cast<unsigned long long>(macro_compiles),
        static_cast<unsigned long long>(macro_reuses),
        static_cast<unsigned long long>(atomic_profiles), hit_rate(),
        static_cast<unsigned long long>(fingerprint_ns), static_cast<unsigned long long>(sdg_ns),
        static_cast<unsigned long long>(cluster_ns), static_cast<unsigned long long>(codegen_ns),
        static_cast<unsigned long long>(contract_ns), static_cast<unsigned long long>(disk_ns),
        static_cast<unsigned long long>(total_ns));
    return buf;
}

// ------------------------------------------------------------- ProfileCache

ProfileCache::ProfileCache(std::size_t capacity, std::string cache_dir,
                           obs::MetricsRegistry* metrics, std::size_t max_bytes)
    : capacity_(capacity), max_bytes_(max_bytes), dir_(std::move(cache_dir)) {
    if (!dir_.empty()) {
        std::error_code ec;
        fs::create_directories(dir_, ec);
        if (SBD_FAULT_HIT("cache.dir_create"))
            ec = std::make_error_code(std::errc::permission_denied);
        if (ec)
            throw std::runtime_error("profile cache: cannot create cache dir '" + dir_ +
                                     "': " + ec.message());
    }
    if (metrics == nullptr) {
        owned_metrics_ = std::make_shared<obs::MetricsRegistry>();
        metrics = owned_metrics_.get();
    }
    metrics_ = metrics;
    c_mem_hits_ = metrics_->counter("sbd_cache_mem_hits_total",
                                    "profile-cache lookups served from the in-memory LRU");
    c_mem_misses_ = metrics_->counter("sbd_cache_mem_misses_total",
                                      "profile-cache lookups absent from memory");
    c_evictions_ = metrics_->counter("sbd_cache_evictions_total",
                                     "in-memory LRU entries dropped at capacity");
    c_disk_hits_ = metrics_->counter("sbd_cache_disk_hits_total",
                                     "profile-cache entries loaded from the on-disk store");
    c_disk_misses_ = metrics_->counter("sbd_cache_disk_misses_total",
                                       "profile-cache lookups with no usable file on disk");
    c_disk_rejects_ =
        metrics_->counter("sbd_cache_disk_rejects_total",
                          "corrupt/mismatched cache files rejected and recovered from");
    c_disk_stores_ = metrics_->counter("sbd_cache_disk_stores_total",
                                       "profile-cache entries written to disk");
    c_disk_ns_ = metrics_->counter("sbd_cache_disk_ns_total",
                                   "cumulative wall time spent on cache disk I/O, nanoseconds");
    c_disk_retries_ = metrics_->counter("sbd_cache_disk_retries_total",
                                        "cache disk operations retried after a failure");
    c_disk_backoff_ns_ = metrics_->counter("sbd_cache_disk_backoff_ns_total",
                                           "time slept between cache disk retries, nanoseconds");
    c_store_drops_ = metrics_->counter("sbd_cache_store_drops_total",
                                       "cache disk stores abandoned after exhausting retries");
    g_mem_bytes_ =
        metrics_->gauge("sbd_cache_mem_bytes", "serialized bytes held by the in-memory cache");
}

void ProfileCache::insert_locked(const Fingerprint& key,
                                 std::shared_ptr<const CacheEntry> entry, std::size_t bytes) {
    lru_.push_front(Node{key, std::move(entry), bytes});
    map_.emplace(key, lru_.begin());
    total_bytes_ += bytes;
    // Count budget, then byte budget. Both stop at one entry so the value
    // just inserted survives — a budget too small for a single entry must
    // degrade the cache to "remember the last result", not break it.
    while (capacity_ != 0 && lru_.size() > capacity_) {
        const Node& victim = lru_.back();
        total_bytes_ -= victim.bytes;
        map_.erase(victim.key);
        lru_.pop_back();
        c_evictions_.inc();
    }
    while (max_bytes_ != 0 && total_bytes_ > max_bytes_ && lru_.size() > 1) {
        const Node& victim = lru_.back();
        total_bytes_ -= victim.bytes;
        map_.erase(victim.key);
        lru_.pop_back();
        c_evictions_.inc();
    }
    g_mem_bytes_.set(static_cast<std::int64_t>(total_bytes_));
}

std::shared_ptr<const CacheEntry> ProfileCache::lookup(const Fingerprint& key) {
    {
        std::lock_guard lock(m_);
        const auto it = map_.find(key);
        if (it != map_.end()) {
            c_mem_hits_.inc();
            lru_.splice(lru_.begin(), lru_, it->second); // move to MRU
            return it->second->entry;
        }
        c_mem_misses_.inc();
    }
    if (dir_.empty()) return nullptr;
    auto entry = disk_load(key);
    if (entry) {
        // Promote to memory so repeated hits skip the disk.
        const std::size_t bytes = max_bytes_ != 0 ? serialize_entry(*entry).size() : 0;
        std::lock_guard lock(m_);
        const auto it = map_.find(key);
        if (it != map_.end()) return it->second->entry;
        insert_locked(key, entry, bytes);
    }
    return entry;
}

std::shared_ptr<const CacheEntry> ProfileCache::store(const Fingerprint& key, CacheEntry entry) {
    auto shared = std::make_shared<const CacheEntry>(std::move(entry));
    const std::size_t bytes = max_bytes_ != 0 ? serialize_entry(*shared).size() : 0;
    bool won = false;
    {
        std::lock_guard lock(m_);
        const auto it = map_.find(key);
        if (it != map_.end()) {
            // Concurrent same-key compile: first store wins, the duplicate
            // result (bit-identical by determinism) is discarded.
            shared = it->second->entry;
        } else {
            insert_locked(key, shared, bytes);
            won = true;
        }
    }
    if (won && !dir_.empty()) disk_store(key, *shared);
    return shared;
}

std::size_t ProfileCache::mem_bytes() const {
    std::lock_guard lock(m_);
    return total_bytes_;
}

bool ProfileCache::contains(const Fingerprint& key) const {
    std::lock_guard lock(m_);
    return map_.contains(key);
}

std::size_t ProfileCache::size() const {
    std::lock_guard lock(m_);
    return lru_.size();
}

PipelineStats ProfileCache::stats() const {
    // No lock: each field is one relaxed read of a registry cell.
    PipelineStats s;
    s.mem_hits = c_mem_hits_.value();
    s.mem_misses = c_mem_misses_.value();
    s.evictions = c_evictions_.value();
    s.disk_hits = c_disk_hits_.value();
    s.disk_misses = c_disk_misses_.value();
    s.disk_rejects = c_disk_rejects_.value();
    s.disk_stores = c_disk_stores_.value();
    s.disk_ns = c_disk_ns_.value();
    s.disk_retries = c_disk_retries_.value();
    s.disk_backoff_ns = c_disk_backoff_ns_.value();
    s.store_drops = c_store_drops_.value();
    return s;
}

void ProfileCache::clear() {
    std::lock_guard lock(m_);
    lru_.clear();
    map_.clear();
    total_bytes_ = 0;
    g_mem_bytes_.set(0);
}

std::shared_ptr<const CacheEntry> ProfileCache::disk_load(const Fingerprint& key) {
    const auto t0 = Clock::now();
    obs::TraceSpan span("disk-load", "cache", key.hex());
    const fs::path path = fs::path(dir_) / (key.hex() + ".sbdp");
    std::vector<std::uint8_t> raw;
    // Transient read failures (injected or real stream errors) are retried
    // with backoff; a read that stays broken degrades to a recompute, never
    // an error — a sick disk cache may only cost time.
    bool read_ok = false;
    for (int attempt = 1; attempt <= retry_.attempts && !read_ok; ++attempt) {
        if (attempt > 1) {
            c_disk_retries_.inc();
            c_disk_backoff_ns_.inc(resilience::backoff_sleep(retry_.backoff_ns(attempt - 1)));
        }
        if (SBD_FAULT_HIT("cache.disk_read")) continue; // simulated EIO
        std::ifstream f(path, std::ios::binary);
        if (!f) {
            // Absent file: the everyday miss, not a transient failure.
            c_disk_misses_.inc();
            c_disk_ns_.inc(ns_since(t0));
            return nullptr;
        }
        raw.assign(std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>());
        read_ok = !f.bad();
    }
    if (!read_ok) {
        c_disk_misses_.inc();
        c_disk_ns_.inc(ns_since(t0));
        return nullptr;
    }
    if (SBD_FAULT_HIT("cache.disk_corrupt") && !raw.empty())
        raw[raw.size() / 2] ^= 0xFF; // flips through the checksum/reject path
    const auto reject = [&]() -> std::shared_ptr<const CacheEntry> {
        // Corrupt/truncated/foreign record: drop the file (best effort) and
        // recompute — a bad cache must never be able to produce bad output.
        std::error_code ec;
        fs::remove(path, ec);
        c_disk_rejects_.inc();
        c_disk_ns_.inc(ns_since(t0));
        return nullptr;
    };
    constexpr std::size_t kHeader = 4 + 4 + 8 + 8 + 8;
    constexpr std::size_t kTrailer = 16;
    if (raw.size() < kHeader + kTrailer) return reject();
    Reader r{raw};
    if (r.u8() != kMagic[0] || r.u8() != kMagic[1] || r.u8() != kMagic[2] ||
        r.u8() != kMagic[3])
        return reject();
    if (r.u32() != kFormatVersion) return reject();
    Fingerprint stored;
    stored.hi = r.u64();
    stored.lo = r.u64();
    if (!(stored == key)) return reject();
    const std::uint64_t payload_len = r.u64();
    if (payload_len != raw.size() - kHeader - kTrailer) return reject();
    const std::span<const std::uint8_t> payload{raw.data() + kHeader,
                                                static_cast<std::size_t>(payload_len)};
    Reader tr{raw};
    tr.pos = kHeader + static_cast<std::size_t>(payload_len);
    Fingerprint check;
    check.hi = tr.u64();
    check.lo = tr.u64();
    if (!(check == payload_checksum(payload))) return reject();
    auto entry = deserialize_entry(payload);
    if (!entry) return reject();
    c_disk_hits_.inc();
    c_disk_ns_.inc(ns_since(t0));
    return std::make_shared<const CacheEntry>(std::move(*entry));
}

void ProfileCache::disk_store(const Fingerprint& key, const CacheEntry& entry) {
    const auto t0 = Clock::now();
    obs::TraceSpan span("disk-store", "cache", key.hex());
    const auto payload = serialize_entry(entry);
    Writer w;
    w.buf.reserve(payload.size() + 48);
    for (const char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
    w.u32(kFormatVersion);
    w.u64(key.hi);
    w.u64(key.lo);
    w.u64(payload.size());
    w.buf.insert(w.buf.end(), payload.begin(), payload.end());
    const Fingerprint check = payload_checksum(payload);
    w.u64(check.hi);
    w.u64(check.lo);

    std::uint64_t serial = 0;
    {
        std::lock_guard lock(m_);
        serial = ++tmp_serial_;
    }
    const fs::path final_path = fs::path(dir_) / (key.hex() + ".sbdp");
    const fs::path tmp_path =
        fs::path(dir_) / (key.hex() + ".tmp" +
                          std::to_string(std::hash<std::thread::id>{}(
                              std::this_thread::get_id()) %
                          1000000) +
                          "." + std::to_string(serial));

    // Losing a disk store is recoverable (the entry stays in memory, the
    // next run recomputes), so every failure here degrades instead of
    // throwing — but transient EEXIST/EACCES-class errors get retried with
    // backoff first, and an abandoned store is counted and warned about
    // once rather than dropped silently.
    const auto drop = [&]() {
        std::error_code rc;
        fs::remove(tmp_path, rc);
        c_store_drops_.inc();
        bool warn = false;
        {
            std::lock_guard lock(m_);
            warn = !warned_store_drop_;
            warned_store_drop_ = true;
        }
        if (warn)
            std::fprintf(stderr,
                         "sbd: warning: profile cache '%s' is not accepting writes "
                         "(entry %s dropped after %d attempts); compilation continues "
                         "without disk caching\n",
                         dir_.c_str(), key.hex().c_str(), retry_.attempts);
        c_disk_ns_.inc(ns_since(t0));
    };
    const auto retry_pause = [&](int failures) {
        c_disk_retries_.inc();
        c_disk_backoff_ns_.inc(resilience::backoff_sleep(retry_.backoff_ns(failures)));
    };

    bool written = false;
    for (int attempt = 1; attempt <= retry_.attempts && !written; ++attempt) {
        if (attempt > 1) retry_pause(attempt - 1);
        if (SBD_FAULT_HIT("cache.disk_write")) continue; // simulated ENOSPC/EIO
        std::ofstream f(tmp_path, std::ios::binary | std::ios::trunc);
        if (!f) continue;
        f.write(reinterpret_cast<const char*>(w.buf.data()),
                static_cast<std::streamsize>(w.buf.size()));
        f.close();
        written = f.good();
    }
    if (!written) return drop();

    bool renamed = false;
    for (int attempt = 1; attempt <= retry_.attempts && !renamed; ++attempt) {
        if (attempt > 1) retry_pause(attempt - 1);
        if (SBD_FAULT_HIT("cache.disk_rename")) continue; // simulated EACCES
        // fsync(tmp) + atomic rename + fsync(dir): a crash right after the
        // rename must not be able to resurrect a zero-length "valid-looking"
        // entry. Failure keeps the temp file and retries.
        renamed = fsio::publish_file_durable(tmp_path, final_path);
    }
    if (!renamed) return drop();
    c_disk_stores_.inc();
    c_disk_ns_.inc(ns_since(t0));
}

// ----------------------------------------------------------------- Pipeline

namespace {

/// One macro-block compilation task of the dependency DAG.
struct Task {
    BlockPtr block;
    Fingerprint key;
    std::vector<std::size_t> parents; ///< task indices waiting on this one
    std::size_t pending = 0;          ///< unfinished macro-sub dependencies
    std::size_t order_pos = 0;        ///< position in the post-order

    // Outcome (written by exactly one worker, read after the join).
    CompiledBlock result;
    bool has_result = false;
    SatClusterStats sat_delta;
    std::exception_ptr error;
    bool dep_failed = false;
    bool reused = false;
    std::uint64_t sdg_ns = 0, cluster_ns = 0, codegen_ns = 0, contract_ns = 0;
};

CompiledBlock block_from_entry(const BlockPtr& block, const CacheEntry& e) {
    CompiledBlock cb;
    cb.block = block;
    cb.profile = e.profile;
    cb.sdg = e.sdg;
    cb.clustering = e.clustering;
    cb.code = e.code;
    return cb;
}

/// Replays a per-block SatClusterStats delta with exactly the assign/add
/// semantics of cluster_disjoint_sat, so accumulating deltas in post-order
/// reproduces the serial path's accumulator byte for byte.
void merge_sat_delta(SatClusterStats& acc, const SatClusterStats& d) {
    acc.budget_exhausted = acc.budget_exhausted || d.budget_exhausted;
    if (d.iterations == 0) return; // block did no SAT work
    acc.iterations += d.iterations;
    acc.first_k = d.first_k;
    acc.final_k = d.final_k;
    acc.vars = d.vars;
    acc.clauses = d.clauses;
    acc.conflicts += d.conflicts;
    acc.decisions += d.decisions;
    acc.propagations += d.propagations;
}

} // namespace

Pipeline::Pipeline(PipelineOptions opts) : opts_(std::move(opts)) {
    init_metrics();
    cache_ = std::make_shared<ProfileCache>(opts_.cache_capacity, opts_.cache_dir, metrics_,
                                            opts_.budgets.memory_bytes);
}

Pipeline::Pipeline(PipelineOptions opts, std::shared_ptr<ProfileCache> cache)
    : opts_(std::move(opts)), cache_(std::move(cache)) {
    init_metrics();
    if (!cache_)
        cache_ = std::make_shared<ProfileCache>(opts_.cache_capacity, opts_.cache_dir, metrics_,
                                                opts_.budgets.memory_bytes);
}

void Pipeline::init_metrics() {
    if (opts_.metrics != nullptr) {
        metrics_ = opts_.metrics;
    } else {
        owned_metrics_ = std::make_shared<obs::MetricsRegistry>();
        metrics_ = owned_metrics_.get();
    }
    c_macro_compiles_ = metrics_->counter("sbd_pipeline_macro_compiles_total",
                                          "macro blocks compiled (cache misses)");
    c_macro_reuses_ = metrics_->counter("sbd_pipeline_macro_reuses_total",
                                        "macro blocks served from the profile cache");
    c_atomic_profiles_ = metrics_->counter("sbd_pipeline_atomic_profiles_total",
                                           "atomic/opaque profiles computed");
    const auto phase_ns = [&](const char* phase) {
        return metrics_->counter("sbd_pipeline_phase_ns_total",
                                 "cumulative wall time per compile phase, nanoseconds",
                                 {{"phase", phase}});
    };
    c_fingerprint_ns_ = phase_ns("fingerprint");
    c_sdg_ns_ = phase_ns("sdg");
    c_cluster_ns_ = phase_ns("cluster");
    c_codegen_ns_ = phase_ns("codegen");
    c_contract_ns_ = phase_ns("contract");
    c_total_ns_ = phase_ns("total");
    const auto phase_hist = [&](const char* phase) {
        return metrics_->histogram("sbd_pipeline_phase_latency_ns",
                                   obs::exponential_bounds(1000, 4.0, 12),
                                   "per-block compile-phase latency, nanoseconds",
                                   {{"phase", phase}});
    };
    h_sdg_ = phase_hist("sdg");
    h_cluster_ = phase_hist("cluster");
    h_codegen_ = phase_hist("codegen");
    h_contract_ = phase_hist("contract");
    h_task_ = metrics_->histogram("sbd_pipeline_task_ns", obs::exponential_bounds(1000, 4.0, 12),
                                  "whole per-block task latency including cache, nanoseconds");
    g_ready_depth_ = metrics_->gauge("sbd_pipeline_ready_depth",
                                     "ready-queue depth of the task-graph driver");
    c_sat_iterations_ =
        metrics_->counter("sbd_sat_iterations_total", "F_k SAT instances solved");
    c_sat_conflicts_ = metrics_->counter("sbd_sat_conflicts_total", "SAT solver conflicts");
    c_sat_decisions_ = metrics_->counter("sbd_sat_decisions_total", "SAT solver decisions");
    c_sat_propagations_ =
        metrics_->counter("sbd_sat_propagations_total", "SAT solver unit propagations");
    c_sat_budget_exhausted_ = metrics_->counter(
        "sbd_sat_budget_exhausted_total",
        "macro compiles whose SAT conflict budget tripped (degraded or aborted)");
    c_deadline_misses_ = metrics_->counter(
        "sbd_pipeline_deadline_misses_total",
        "pipeline tasks refused because the wall-clock deadline had expired");
    g_sat_first_k_ =
        metrics_->gauge("sbd_sat_first_k", "k of the first (smallest) F_k instance");
    g_sat_final_k_ = metrics_->gauge("sbd_sat_final_k", "k of the satisfiable F_k instance");
    g_sat_vars_ = metrics_->gauge("sbd_sat_vars", "variables of the final F_k instance");
    g_sat_clauses_ = metrics_->gauge("sbd_sat_clauses", "clauses of the final F_k instance");
}

/// Registry twin of merge_sat_delta: replayed deltas (cache hits) drive the
/// same counters the cold path does, so a warm compile's registry snapshot
/// equals a cold one's byte for byte.
void Pipeline::record_sat_delta(const SatClusterStats& d) {
    if (d.budget_exhausted) c_sat_budget_exhausted_.inc();
    if (d.iterations == 0) return; // block did no SAT work
    c_sat_iterations_.inc(d.iterations);
    g_sat_first_k_.set(static_cast<std::int64_t>(d.first_k));
    g_sat_final_k_.set(static_cast<std::int64_t>(d.final_k));
    g_sat_vars_.set(static_cast<std::int64_t>(d.vars));
    g_sat_clauses_.set(static_cast<std::int64_t>(d.clauses));
    c_sat_conflicts_.inc(d.conflicts);
    c_sat_decisions_.inc(d.decisions);
    c_sat_propagations_.inc(d.propagations);
}

PipelineStats Pipeline::stats() const {
    PipelineStats s = cache_->stats();
    s.macro_compiles = c_macro_compiles_.value();
    s.macro_reuses = c_macro_reuses_.value();
    s.atomic_profiles = c_atomic_profiles_.value();
    s.fingerprint_ns = c_fingerprint_ns_.value();
    s.sdg_ns = c_sdg_ns_.value();
    s.cluster_ns = c_cluster_ns_.value();
    s.codegen_ns = c_codegen_ns_.value();
    s.contract_ns = c_contract_ns_.value();
    s.total_ns = c_total_ns_.value();
    s.deadline_misses = c_deadline_misses_.value();
    return s;
}

CompiledSystem Pipeline::compile(BlockPtr root, SatClusterStats* sat_stats) {
    if (!root) throw std::invalid_argument("compile_hierarchy: null root");
    const auto t_total = Clock::now();
    obs::TraceSpan compile_span("compile", "pipeline", root->type_name());
    // Armed once per compile; every task boundary is a cooperative
    // cancellation point. The pipeline.deadline fault forces the verdict
    // deterministically in tests.
    const resilience::Deadline deadline =
        resilience::Deadline::after_ms(opts_.budgets.deadline_ms);

    CompiledSystem sys;
    sys.root_ = root;

    // ---- Phase 1 (serial): discovery. Walks the hierarchy in the same
    // deterministic post-order of first visit as the original recursion,
    // computing atomic profiles inline (they are cheap and pure) and one
    // structural fingerprint per unique block. Macro blocks become tasks of
    // the dependency DAG; `order` becomes CompiledSystem::order() verbatim,
    // independent of scheduling.
    const auto t_fp = Clock::now();
    BlockFingerprinter fper;
    std::vector<Task> tasks;
    std::unordered_map<const Block*, std::size_t> task_of; // macro -> task index
    std::vector<const Block*> order;

    {
        struct Frame {
            BlockPtr block;
            std::size_t next_sub = 0;
        };
        std::vector<Frame> stack;
        std::unordered_map<const Block*, bool> visited; // false = on stack
        const std::function<void(const BlockPtr&)> visit = [&](const BlockPtr& b) {
            if (visited.contains(b.get())) return;
            if (b->is_atomic()) {
                visited.emplace(b.get(), true);
                CompiledBlock cb;
                cb.block = b;
                cb.profile = b->is_opaque()
                                 ? opaque_profile(static_cast<const OpaqueBlock&>(*b))
                                 : atomic_profile(static_cast<const AtomicBlock&>(*b));
                sys.blocks_.emplace(b.get(), std::move(cb));
                order.push_back(b.get());
                c_atomic_profiles_.inc();
                return;
            }
            const auto& macro = static_cast<const MacroBlock&>(*b);
            for (std::size_t s = 0; s < macro.num_subs(); ++s) visit(macro.sub(s).type);
            visited.emplace(b.get(), true);
            Task t;
            t.block = b;
            t.key = compile_key(fper.of(*b), opts_.method, opts_.cluster);
            t.order_pos = order.size();
            order.push_back(b.get());
            task_of.emplace(b.get(), tasks.size());
            tasks.push_back(std::move(t));
        };
        visit(root);
    }
    c_fingerprint_ns_.inc(ns_since(t_fp));

    // Dependency edges: a macro waits for its unique macro sub types.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const auto& macro = static_cast<const MacroBlock&>(*tasks[i].block);
        std::unordered_map<const Block*, bool> seen;
        for (std::size_t s = 0; s < macro.num_subs(); ++s) {
            const Block* sub = macro.sub(s).type.get();
            if (sub->is_atomic() || seen.contains(sub)) continue;
            seen.emplace(sub, true);
            tasks[task_of.at(sub)].parents.push_back(i);
            ++tasks[i].pending;
        }
    }

    // The profile of an already-settled block (atomic or compiled macro).
    const auto profile_of = [&](const Block* b) -> const Profile* {
        const auto it = sys.blocks_.find(b);
        if (it != sys.blocks_.end()) return &it->second.profile;
        return &tasks[task_of.at(b)].result.profile;
    };

    // ---- Phase 2: execute the task DAG bottom-up. run_task is the whole
    // modular compilation of one macro block, through the cache.
    const auto run_task = [&](Task& t) {
        obs::TraceSpan task_span("compile-block", "pipeline", t.block->type_name());
        const auto t_task = Clock::now();
        try {
            if (deadline.due("pipeline.deadline")) {
                c_deadline_misses_.inc();
                throw resilience::DeadlineExceeded(
                    "pipeline: deadline expired before compiling subtree '" +
                    t.block->type_name() + "' (partial result discarded)");
            }
            if (SBD_FAULT_HIT("pipeline.task"))
                throw resilience::FaultInjected("pipeline: injected task fault at subtree '" +
                                                t.block->type_name() + "'");
            if (auto entry = cache_->lookup(t.key)) {
                t.result = block_from_entry(t.block, *entry);
                t.sat_delta = entry->sat_delta;
                t.has_result = true;
                t.reused = true;
                h_task_.observe(ns_since(t_task));
                return;
            }
            const auto& macro = static_cast<const MacroBlock&>(*t.block);
            std::vector<const Profile*> sub_profiles;
            sub_profiles.reserve(macro.num_subs());
            for (std::size_t s = 0; s < macro.num_subs(); ++s)
                sub_profiles.push_back(profile_of(macro.sub(s).type.get()));

            CompiledBlock cb;
            cb.block = t.block;
            auto t0 = Clock::now();
            {
                obs::TraceSpan span("sdg", "compile", macro.type_name());
                cb.sdg = build_sdg(macro, sub_profiles);
            }
            t.sdg_ns = ns_since(t0);
            h_sdg_.observe(t.sdg_ns);
            t0 = Clock::now();
            SatClusterStats delta;
            {
                obs::TraceSpan span("cluster", "compile", macro.type_name());
                cb.clustering = cluster(*cb.sdg, opts_.method, opts_.cluster, &delta);
            }
            t.cluster_ns = ns_since(t0);
            h_cluster_.observe(t.cluster_ns);
            t0 = Clock::now();
            CodegenResult gen;
            {
                obs::TraceSpan span("codegen", "compile", macro.type_name());
                gen = generate_code(macro, sub_profiles, *cb.sdg, *cb.clustering);
            }
            cb.code = std::move(gen.code);
            cb.profile = std::move(gen.profile);
            t.codegen_ns = ns_since(t0);
            h_codegen_.observe(t.codegen_ns);
            if (opts_.cluster.verify_contracts) {
                t0 = Clock::now();
                obs::TraceSpan span("contract", "compile", macro.type_name());
                const auto findings = check_profile_contract(macro, sub_profiles, *cb.sdg,
                                                             *cb.clustering, cb.profile);
                t.contract_ns = ns_since(t0);
                h_contract_.observe(t.contract_ns);
                if (any_fatal(findings)) {
                    std::string msg = "contract violation in generated profile:";
                    for (const auto& f : findings)
                        if (f.fatal)
                            msg += "\n  [" + std::string(to_string(f.kind)) + "] " + f.message;
                    throw std::logic_error(msg);
                }
            }
            CacheEntry entry;
            entry.profile = cb.profile;
            entry.sdg = cb.sdg;
            entry.clustering = cb.clustering;
            entry.code = cb.code;
            entry.sat_delta = delta;
            cache_->store(t.key, std::move(entry));
            t.result = std::move(cb);
            t.sat_delta = delta;
            t.has_result = true;
        } catch (...) {
            t.error = std::current_exception();
        }
        h_task_.observe(ns_since(t_task));
    };

    const std::size_t nthreads =
        opts_.threads == 0 ? 1 : std::min(opts_.threads, std::max<std::size_t>(1, tasks.size()));
    if (nthreads <= 1) {
        // Serial: post-order is already a topological order of the DAG.
        for (auto& t : tasks)
            if (t.dep_failed || [&] {
                    const auto& macro = static_cast<const MacroBlock&>(*t.block);
                    for (std::size_t s = 0; s < macro.num_subs(); ++s) {
                        const Block* sub = macro.sub(s).type.get();
                        if (!sub->is_atomic() && !tasks[task_of.at(sub)].has_result) return true;
                    }
                    return false;
                }())
                t.dep_failed = true;
            else
                run_task(t);
    } else {
        std::mutex m;
        std::condition_variable cv;
        std::deque<std::size_t> ready;
        std::size_t settled = 0;
        for (std::size_t i = 0; i < tasks.size(); ++i)
            if (tasks[i].pending == 0) ready.push_back(i);
        g_ready_depth_.set(static_cast<std::int64_t>(ready.size()));

        const auto settle = [&](std::size_t i) {
            // Called with the lock held: propagate completion/failure to
            // parents and wake anyone waiting for work or the join.
            for (const auto p : tasks[i].parents) {
                if (!tasks[i].has_result) tasks[p].dep_failed = true;
                if (--tasks[p].pending == 0) ready.push_back(p);
            }
            g_ready_depth_.set(static_cast<std::int64_t>(ready.size()));
            ++settled;
            cv.notify_all();
        };
        const auto worker = [&] {
            std::unique_lock lock(m);
            for (;;) {
                cv.wait(lock, [&] { return !ready.empty() || settled == tasks.size(); });
                if (ready.empty()) return; // all settled
                const std::size_t i = ready.front();
                ready.pop_front();
                g_ready_depth_.set(static_cast<std::int64_t>(ready.size()));
                if (tasks[i].dep_failed) {
                    // Failed dependency: never run, counts as settled. No
                    // cancellation of independent subtrees — the set of
                    // tasks that run is schedule-independent, which keeps
                    // the reported error deterministic.
                    settle(i);
                    continue;
                }
                lock.unlock();
                run_task(tasks[i]);
                lock.lock();
                settle(i);
            }
        };
        std::vector<std::thread> team;
        team.reserve(nthreads - 1);
        for (std::size_t k = 0; k + 1 < nthreads; ++k) team.emplace_back(worker);
        worker();
        for (auto& th : team) th.join();
    }

    // ---- Phase 3 (serial): deterministic assembly. Errors are reported in
    // post-order — exactly the block the serial recursion would have thrown
    // on — and SAT deltas are merged in the same order the serial path
    // accumulated them.
    for (const auto& t : tasks)
        if (t.error) {
            c_total_ns_.inc(ns_since(t_total));
            std::rethrow_exception(t.error);
        }
    for (auto& t : tasks) {
        if (sat_stats != nullptr) merge_sat_delta(*sat_stats, t.sat_delta);
        record_sat_delta(t.sat_delta);
        if (t.reused)
            c_macro_reuses_.inc();
        else
            c_macro_compiles_.inc();
        c_sdg_ns_.inc(t.sdg_ns);
        c_cluster_ns_.inc(t.cluster_ns);
        c_codegen_ns_.inc(t.codegen_ns);
        c_contract_ns_.inc(t.contract_ns);
        sys.blocks_.emplace(t.block.get(), std::move(t.result));
    }
    sys.order_ = std::move(order);
    c_total_ns_.inc(ns_since(t_total));
    return sys;
}

} // namespace sbd::codegen
