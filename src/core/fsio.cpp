#include "core/fsio.hpp"

#include <cerrno>
#include <fstream>
#include <system_error>

#include <fcntl.h>
#include <unistd.h>

namespace sbd::fsio {

namespace fs = std::filesystem;

bool fsync_fd(int fd) noexcept {
    int rc = 0;
    do {
        rc = ::fsync(fd);
    } while (rc != 0 && errno == EINTR);
    return rc == 0;
}

namespace {

bool fsync_path(const fs::path& path) noexcept {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return false;
    const bool ok = fsync_fd(fd);
    ::close(fd);
    return ok;
}

} // namespace

bool fsync_file(const fs::path& path) noexcept { return fsync_path(path); }

bool fsync_parent_dir(const fs::path& path) noexcept {
    fs::path dir = path.parent_path();
    if (dir.empty()) dir = ".";
    return fsync_path(dir);
}

bool publish_file_durable(const fs::path& tmp, const fs::path& final_path,
                          bool durable_sync) noexcept {
    if (durable_sync && !fsync_file(tmp)) return false;
    std::error_code ec;
    fs::rename(tmp, final_path, ec); // atomic: readers see old/none/new
    if (ec) return false;
    if (durable_sync && !fsync_parent_dir(final_path)) return false;
    return true;
}

bool write_file_durable(const fs::path& final_path, const fs::path& tmp,
                        std::span<const std::uint8_t> bytes,
                        bool durable_sync) noexcept {
    bool written = false;
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (f) {
            f.write(reinterpret_cast<const char*>(bytes.data()),
                    static_cast<std::streamsize>(bytes.size()));
            f.close();
            written = f.good();
        }
    }
    if (written && publish_file_durable(tmp, final_path, durable_sync)) return true;
    std::error_code ec;
    fs::remove(tmp, ec);
    return false;
}

} // namespace sbd::fsio
