#ifndef SBD_CORE_EXEC_HPP
#define SBD_CORE_EXEC_HPP

#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/compiler.hpp"

namespace sbd::obs {
class MetricsRegistry;
}

namespace sbd::codegen {

/// A runtime instance of a compiled block: the persistent data behind the
/// generated code (signal slots, guard counters, sub-instances; block state
/// for atomic blocks) plus a way to execute its interface functions.
///
/// This is the backend-neutral execution interface. Two backends implement
/// it: InterpInstance interprets the generated IR in-process, and the native
/// backend (src/native) binds the same contract to interface functions
/// compiled ahead-of-time into a dlopen'ed shared object. Everything above
/// this interface — the runtime engine, trace replay, the serve daemon, the
/// differential tests — is backend-agnostic.
///
/// Argument/result validation (and therefore every documented error message)
/// lives in the non-virtual entry points below, so both backends reject bad
/// calls identically by construction.
class Instance {
public:
    virtual ~Instance() = default;

    Instance(const Instance&) = delete;
    Instance& operator=(const Instance&) = delete;

    /// (Re-)initializes all state: the generated init() function.
    void init() { do_init(); }

    /// Calls interface function `fn` of the block's profile. `args` carries
    /// the values of the function's read ports (profile functions[fn].reads
    /// order); the result carries its written ports (writes order).
    std::vector<double> call(std::size_t fn, std::span<const double> args);

    /// Allocation-free form of call(): writes the function's results into
    /// `results`, which must have exactly results_size(fn) elements. All
    /// scratch space lives in per-instance buffers sized at construction,
    /// so repeated calls never touch the allocator — the contract the
    /// runtime engine's hot path relies on.
    void call_into(std::size_t fn, std::span<const double> args, std::span<double> results);

    /// Number of values written by interface function `fn`.
    std::size_t results_size(std::size_t fn) const;

    /// Executes one full synchronous instant: calls every interface function
    /// exactly once in a PDG-consistent order, feeding each from `inputs`
    /// (all input port values) and collecting all output port values.
    std::vector<double> step_instant(std::span<const double> inputs);

    /// Allocation-free form of step_instant(): `outputs` must have exactly
    /// num_outputs() elements. Uses a precomputed PDG-consistent order
    /// (no per-call order validation).
    void step_instant_into(std::span<const double> inputs, std::span<double> outputs);

    /// As step_instant but with an explicit call order (function indices,
    /// a permutation). Throws std::invalid_argument if the order violates
    /// the PDG — used to verify that *every* legal serialization yields the
    /// same results.
    std::vector<double> step_instant_ordered(std::span<const double> inputs,
                                             std::span<const std::size_t> order);

    const Profile& profile() const { return compiled_->profile; }
    const Block& block() const { return *block_; }

    /// Number of doubles save_state() appends: the complete persistent
    /// footprint (atomic block state, signal slots, guard counters,
    /// sub-instances depth-first). Fixed for a given compiled system and
    /// identical across backends — the layout is the serialization contract
    /// that lets a snapshot taken from one backend restore into the other.
    std::size_t state_size() const { return do_state_size(); }
    /// Appends the instance's complete persistent state to `out` in the
    /// fixed state_size() layout. Guard counters are widened to double
    /// (int32 values are exactly representable), so a state blob is a flat
    /// double vector that snapshots and restores bit-exactly.
    void save_state(std::vector<double>& out) const;
    /// Restores state written by save_state() into this instance; returns
    /// the number of values consumed. Throws std::invalid_argument when
    /// `in` holds fewer than state_size() values.
    std::size_t restore_state(std::span<const double> in);

protected:
    /// Rejects interface-only (opaque) blocks — neither backend can execute
    /// a block whose implementation was never supplied.
    Instance(const CompiledSystem& sys, BlockPtr block);

    virtual void do_init() = 0;
    virtual void do_call_into(std::size_t fn, std::span<const double> args,
                              std::span<double> results) = 0;
    virtual void do_step_instant_into(std::span<const double> inputs,
                                      std::span<double> outputs) = 0;
    virtual std::size_t do_state_size() const = 0;
    virtual void do_save_state(std::vector<double>& out) const = 0;
    virtual void do_restore_state(std::span<const double> in) = 0;

    const CompiledSystem* sys_;
    BlockPtr block_;
    const CompiledBlock* compiled_;
};

/// The interpreter backend: walks the generated IR (core/ir.hpp) directly,
/// with sub-instances instantiated recursively. This is the reference
/// execution path every other backend is differentially tested against.
class InterpInstance final : public Instance {
public:
    InterpInstance(const CompiledSystem& sys, BlockPtr block);

protected:
    void do_init() override;
    void do_call_into(std::size_t fn, std::span<const double> args,
                      std::span<double> results) override;
    void do_step_instant_into(std::span<const double> inputs,
                              std::span<double> outputs) override;
    std::size_t do_state_size() const override;
    void do_save_state(std::vector<double>& out) const override;
    void do_restore_state(std::span<const double> in) override;

private:
    void call_atomic_into(std::size_t fn, std::span<const double> args,
                          std::span<double> results);
    void call_macro_into(std::size_t fn, std::span<const double> args, std::span<double> results);

    std::vector<double> state_; ///< atomic block state
    std::vector<double> slots_;
    std::vector<std::int32_t> counters_;
    std::vector<std::unique_ptr<InterpInstance>> subs_;
    std::vector<std::size_t> pdg_order_;

    // Scratch buffers for the allocation-free paths; capacities are fixed in
    // the constructor and never grow afterwards.
    std::vector<double> scratch_args_;    ///< args of one sub-block call
    std::vector<double> scratch_results_; ///< results of one sub-block call
    std::vector<double> step_args_;       ///< per-function argument gather in step_instant
    std::vector<double> step_results_;    ///< per-function result buffer in step_instant
};

// ---------------------------------------------------------------------------
// Backend selection: the factory the engine, the tools and the serve daemon
// all go through, so `--backend=interp|native` changes nothing above here.

enum class Backend { Interp, Native };

const char* to_string(Backend b);

/// How to build an Executable for a compiled system. Everything beyond
/// `backend` only matters to the native backend (artifact store location,
/// compiler override, clustering identity for artifact keying, metrics).
struct BackendConfig {
    Backend backend = Backend::Interp;
    /// Clustering identity mixed into the native artifact key (the same
    /// method/options pair the profile cache keys on). The emitted source
    /// already encodes them, but keying on them too keeps the store
    /// human-auditable: one artifact family per fingerprint x method.
    Method method = Method::Dynamic;
    ClusterOptions cluster;
    /// Native artifact store directory; "" = <system temp>/sbd-native.
    /// Shares a parent with the profile cache when tools pass --cache-dir.
    std::string cache_dir;
    /// C++ compiler driver for native modules; "" = $SBD_NATIVE_CXX, else
    /// $CXX, else "c++".
    std::string compiler;
    /// Extra compile flags appended after the fixed flag set (testing knob;
    /// participates in the artifact key).
    std::string extra_flags;
    obs::MetricsRegistry* metrics = nullptr;
};

/// Thrown by the native backend when it cannot deliver an executable: no
/// usable compiler, emission rejected the system, the compile failed, or a
/// built artifact cannot be loaded/validated. Tools map this to exit code 9
/// (kExitNative) — distinct from model errors, so operators can tell "your
/// diagram is wrong" from "this host cannot run natively".
class BackendError : public std::runtime_error {
public:
    enum class Code {
        Unavailable,   ///< backend not linked into this binary
        NoCompiler,    ///< no working C++ compiler found
        EmitFailed,    ///< system cannot be emitted as a self-contained TU
        CompileFailed, ///< compiler invocation failed
        LoadFailed,    ///< dlopen/validation failed even after a rebuild
    };

    BackendError(Code code, const std::string& what)
        : std::runtime_error(what), code_(code) {}

    Code code() const { return code_; }

private:
    Code code_;
};

/// A reusable recipe for creating instances of one compiled block under one
/// backend. Construction does the expensive work once (for native: emit,
/// compile or cache-hit, dlopen, validate); instantiate() is then cheap and
/// thread-safe, which is what lets an engine pool or a serve shard stamp
/// out thousands of instances from one artifact.
class Executable {
public:
    virtual ~Executable() = default;

    virtual std::unique_ptr<Instance> instantiate() const = 0;
    virtual const char* backend_name() const = 0;

    const CompiledSystem& system() const { return *sys_; }
    const BlockPtr& root() const { return root_; }

protected:
    Executable(const CompiledSystem& sys, BlockPtr root)
        : sys_(&sys), root_(std::move(root)) {}

    const CompiledSystem* sys_;
    BlockPtr root_;
};

/// Builds an Executable for `root` under the configured backend. The caller
/// keeps `sys` alive for the executable's lifetime (the same contract Engine
/// already has). Backend::Native throws BackendError unless the native
/// backend is linked in and registered (sbd::native::install()).
std::shared_ptr<const Executable> make_executable(const CompiledSystem& sys, BlockPtr root,
                                                  const BackendConfig& cfg = {});

/// Native-backend registration hook. The native backend lives in its own
/// library (sbd_native) so that sbd_core does not depend on dlopen or the
/// host compiler; binaries that want `--backend=native` link sbd_native and
/// call sbd::native::install(), which registers its factory here.
using NativeBackendFactory = std::shared_ptr<const Executable> (*)(const CompiledSystem&,
                                                                   BlockPtr,
                                                                   const BackendConfig&);
void register_native_backend(NativeBackendFactory factory);
bool native_backend_available();

} // namespace sbd::codegen

#endif
