#ifndef SBD_CORE_EXEC_HPP
#define SBD_CORE_EXEC_HPP

#include <memory>
#include <span>
#include <vector>

#include "core/compiler.hpp"

namespace sbd::codegen {

/// A runtime instance of a compiled block: the persistent data behind the
/// generated code (signal slots, guard counters, sub-instances; block state
/// for atomic blocks) plus an interpreter for the generated IR.
///
/// This is how the repository *executes* generated modular code, so that
/// every clustering method can be checked bit-for-bit against the reference
/// simulator on the flattened diagram.
class Instance {
public:
    Instance(const CompiledSystem& sys, BlockPtr block);

    /// (Re-)initializes all state: the generated init() function.
    void init();

    /// Calls interface function `fn` of the block's profile. `args` carries
    /// the values of the function's read ports (profile functions[fn].reads
    /// order); the result carries its written ports (writes order).
    std::vector<double> call(std::size_t fn, std::span<const double> args);

    /// Allocation-free form of call(): writes the function's results into
    /// `results`, which must have exactly results_size(fn) elements. All
    /// scratch space lives in per-instance buffers sized at construction,
    /// so repeated calls never touch the allocator — the contract the
    /// runtime engine's hot path relies on.
    void call_into(std::size_t fn, std::span<const double> args, std::span<double> results);

    /// Number of values written by interface function `fn`.
    std::size_t results_size(std::size_t fn) const;

    /// Executes one full synchronous instant: calls every interface function
    /// exactly once in a PDG-consistent order, feeding each from `inputs`
    /// (all input port values) and collecting all output port values.
    std::vector<double> step_instant(std::span<const double> inputs);

    /// Allocation-free form of step_instant(): `outputs` must have exactly
    /// num_outputs() elements. Uses the precomputed PDG-consistent order
    /// (no per-call order validation).
    void step_instant_into(std::span<const double> inputs, std::span<double> outputs);

    /// As step_instant but with an explicit call order (function indices,
    /// a permutation). Throws std::invalid_argument if the order violates
    /// the PDG — used to verify that *every* legal serialization yields the
    /// same results.
    std::vector<double> step_instant_ordered(std::span<const double> inputs,
                                             std::span<const std::size_t> order);

    const Profile& profile() const { return compiled_->profile; }
    const Block& block() const { return *block_; }

    /// Number of doubles save_state() appends: the complete persistent
    /// footprint (atomic block state, signal slots, guard counters,
    /// sub-instances depth-first). Fixed for a given compiled system.
    std::size_t state_size() const;
    /// Appends the instance's complete persistent state to `out` in the
    /// fixed state_size() layout. Guard counters are widened to double
    /// (int32 values are exactly representable), so a state blob is a flat
    /// double vector that snapshots and restores bit-exactly.
    void save_state(std::vector<double>& out) const;
    /// Restores state written by save_state() into this instance; returns
    /// the number of values consumed. Throws std::invalid_argument when
    /// `in` holds fewer than state_size() values.
    std::size_t restore_state(std::span<const double> in);

private:
    void call_atomic_into(std::size_t fn, std::span<const double> args,
                          std::span<double> results);
    void call_macro_into(std::size_t fn, std::span<const double> args, std::span<double> results);

    const CompiledSystem* sys_;
    BlockPtr block_;
    const CompiledBlock* compiled_;

    std::vector<double> state_; ///< atomic block state
    std::vector<double> slots_;
    std::vector<std::int32_t> counters_;
    std::vector<std::unique_ptr<Instance>> subs_;
    std::vector<std::size_t> pdg_order_;

    // Scratch buffers for the allocation-free paths; capacities are fixed in
    // the constructor and never grow afterwards.
    std::vector<double> scratch_args_;    ///< args of one sub-block call
    std::vector<double> scratch_results_; ///< results of one sub-block call
    std::vector<double> step_args_;       ///< per-function argument gather in step_instant
    std::vector<double> step_results_;    ///< per-function result buffer in step_instant
};

} // namespace sbd::codegen

#endif
