#ifndef SBD_CORE_PIPELINE_HPP
#define SBD_CORE_PIPELINE_HPP

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/compiler.hpp"
#include "core/fingerprint.hpp"
#include "obs/metrics.hpp"
#include "resilience/budget.hpp"

namespace sbd::codegen {

/// Cache and per-stage timing counters of a compilation pipeline run.
/// Counters are cumulative over the lifetime of the Pipeline / ProfileCache
/// they belong to; all *_ns figures are wall time in nanoseconds.
///
/// Since the observability subsystem landed this struct is a *view*: every
/// field is read back from the obs::MetricsRegistry series the pipeline and
/// cache record into, so `--stats`, `--metrics-out` and programmatic
/// snapshots can never drift apart.
struct PipelineStats {
    // Profile cache.
    std::uint64_t mem_hits = 0;     ///< served from the in-memory LRU
    std::uint64_t mem_misses = 0;   ///< absent from memory (disk then tried)
    std::uint64_t evictions = 0;    ///< LRU entries dropped at capacity
    std::uint64_t disk_hits = 0;    ///< loaded from the on-disk store
    std::uint64_t disk_misses = 0;  ///< no usable file on disk
    std::uint64_t disk_rejects = 0; ///< file present but corrupt/mismatched
    std::uint64_t disk_stores = 0;  ///< entries written to disk

    // Resilience (retry-with-backoff on transient disk I/O, budgets).
    std::uint64_t disk_retries = 0;    ///< disk operations retried after a failure
    std::uint64_t disk_backoff_ns = 0; ///< total time slept between retries
    std::uint64_t store_drops = 0;     ///< disk stores abandoned after all retries
    std::uint64_t deadline_misses = 0; ///< pipeline tasks refused: deadline expired

    // Work actually performed.
    std::uint64_t macro_compiles = 0;  ///< macro blocks compiled (cache misses)
    std::uint64_t macro_reuses = 0;    ///< macro blocks served from the cache
    std::uint64_t atomic_profiles = 0; ///< atomic/opaque profiles computed

    // Per-stage wall time.
    std::uint64_t fingerprint_ns = 0;
    std::uint64_t sdg_ns = 0;
    std::uint64_t cluster_ns = 0;
    std::uint64_t codegen_ns = 0;
    std::uint64_t contract_ns = 0;
    std::uint64_t disk_ns = 0;
    std::uint64_t total_ns = 0;

    /// Fraction of macro-block compilations served from the cache.
    double hit_rate() const {
        const std::uint64_t n = macro_compiles + macro_reuses;
        return n == 0 ? 0.0 : static_cast<double>(macro_reuses) / static_cast<double>(n);
    }

    std::string to_json() const;
};

/// One cached compilation result: everything compiling a macro block
/// produces, plus the SAT statistics the computation cost — replayed on a
/// hit so a warm compile reports byte-identical SatClusterStats to a cold
/// one. Entries are immutable once stored and shared by reference.
struct CacheEntry {
    Profile profile;
    std::optional<Sdg> sdg;
    std::optional<Clustering> clustering;
    std::optional<CodeUnit> code;
    SatClusterStats sat_delta;
};

/// Serialized form of an entry (the on-disk cache record, minus the file
/// header). Exposed for the format tests.
std::vector<std::uint8_t> serialize_entry(const CacheEntry& entry);
/// Parses a serialized entry; returns nullopt on any structural problem
/// (truncation, bad tags, out-of-range counts) instead of throwing.
std::optional<CacheEntry> deserialize_entry(std::span<const std::uint8_t> payload);

/// Content-addressed profile cache: an in-memory LRU in front of an
/// optional on-disk store. Keys are compile_key() fingerprints, so a lookup
/// hit *is* a proof that the cached artifacts were compiled from an
/// identical (sub-diagram, method, options) triple.
///
/// Thread-safe: lookups and stores may race freely; concurrent stores of
/// the same key keep the first entry (results are deterministic, so both
/// candidates are bit-identical). Disk files are written to a temporary
/// name and atomically renamed, so a reader never observes a torn record,
/// and any corrupt or truncated file is treated as a miss and rewritten.
class ProfileCache {
public:
    /// `capacity` = max in-memory entries (0 = unbounded); `cache_dir`
    /// non-empty enables the on-disk store (the directory is created).
    /// `metrics` is where the cache counters live; when nullptr the cache
    /// creates a private registry, so counting always works and stats()
    /// always has a source of truth. `max_bytes` bounds the in-memory
    /// entries by their serialized size (0 = unbounded); eviction keeps at
    /// least the most recent entry so a store always succeeds.
    explicit ProfileCache(std::size_t capacity = 0, std::string cache_dir = {},
                          obs::MetricsRegistry* metrics = nullptr, std::size_t max_bytes = 0);

    std::shared_ptr<const CacheEntry> lookup(const Fingerprint& key);
    /// Inserts (first writer wins) and returns the entry that won.
    std::shared_ptr<const CacheEntry> store(const Fingerprint& key, CacheEntry entry);

    bool contains(const Fingerprint& key) const;
    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    std::size_t max_bytes() const { return max_bytes_; }
    /// Serialized bytes currently held in memory (0 when no byte budget is
    /// set — weights are only computed under a budget).
    std::size_t mem_bytes() const;
    const std::string& cache_dir() const { return dir_; }

    /// Retry policy for transient disk-I/O failures (reads, writes, the
    /// atomic rename). Tests shrink the backoff to keep wall time low.
    void set_retry_policy(resilience::RetryPolicy policy) { retry_ = policy; }
    const resilience::RetryPolicy& retry_policy() const { return retry_; }

    /// Snapshot of the cache-side counters (work/timing fields are zero),
    /// read back from the registry series.
    PipelineStats stats() const;
    /// Registry the cache counters live in (owned unless one was injected).
    obs::MetricsRegistry* metrics() const { return metrics_; }
    void clear(); ///< drops the in-memory entries (disk files stay)

private:
    struct Node {
        Fingerprint key;
        std::shared_ptr<const CacheEntry> entry;
        std::size_t bytes = 0; ///< serialized weight; 0 when no byte budget
    };

    std::shared_ptr<const CacheEntry> disk_load(const Fingerprint& key);
    void disk_store(const Fingerprint& key, const CacheEntry& entry);
    /// Inserts at MRU and evicts past the count/byte budgets (lock held).
    void insert_locked(const Fingerprint& key, std::shared_ptr<const CacheEntry> entry,
                       std::size_t bytes);

    mutable std::mutex m_;
    std::size_t capacity_;
    std::size_t max_bytes_ = 0;
    std::size_t total_bytes_ = 0;
    std::string dir_;
    resilience::RetryPolicy retry_;
    /// MRU-first list; map points into it.
    std::list<Node> lru_;
    std::unordered_map<Fingerprint, decltype(lru_)::iterator, FingerprintHash> map_;
    std::uint64_t tmp_serial_ = 0; ///< unique temp-file suffixes
    bool warned_store_drop_ = false; ///< one-shot stderr warning latch

    std::shared_ptr<obs::MetricsRegistry> owned_metrics_;
    obs::MetricsRegistry* metrics_ = nullptr;
    obs::Counter c_mem_hits_, c_mem_misses_, c_evictions_;
    obs::Counter c_disk_hits_, c_disk_misses_, c_disk_rejects_, c_disk_stores_, c_disk_ns_;
    obs::Counter c_disk_retries_, c_disk_backoff_ns_, c_store_drops_;
    obs::Gauge g_mem_bytes_;
};

struct PipelineOptions {
    Method method = Method::Dynamic;
    ClusterOptions cluster;
    /// Worker threads of the task-graph driver (1 = serial in deterministic
    /// post-order; results are bit-identical for every thread count).
    std::size_t threads = 1;
    /// In-memory cache capacity when the pipeline owns its cache.
    std::size_t cache_capacity = 0;
    /// On-disk cache directory when the pipeline owns its cache.
    std::string cache_dir;
    /// Observability sink for the pipeline's counters, gauges, histograms
    /// and the cache it owns. nullptr = the pipeline creates a private
    /// registry (stats() still works; nothing is exported unless asked).
    obs::MetricsRegistry* metrics = nullptr;
    /// Resource budgets: deadline_ms arms a wall-clock deadline checked at
    /// every task boundary (expiry -> DeadlineExceeded naming the block the
    /// pipeline refused to compile); memory_bytes bounds the owned cache's
    /// in-memory footprint. Zero = unlimited.
    resilience::Budgets budgets;
};

/// The compilation pipeline: compiles a block hierarchy bottom-up through
/// the profile cache, scheduling independent subtrees concurrently.
///
/// The paper's central property makes this sound: a macro block is compiled
/// from its sub-blocks' *profiles only*, so compilation is context-free —
/// cacheable by structural fingerprint and parallelizable across the
/// hierarchy's dependency DAG. The produced CompiledSystem (block order,
/// artifacts, accumulated SAT statistics, thrown errors) is bit-identical
/// to the serial uncached path for every thread count and cache state.
class Pipeline {
public:
    explicit Pipeline(PipelineOptions opts = {});
    /// Shares an external cache (e.g. across sbd-lint method probes).
    Pipeline(PipelineOptions opts, std::shared_ptr<ProfileCache> cache);

    CompiledSystem compile(BlockPtr root, SatClusterStats* sat_stats = nullptr);

    /// Cumulative stats: this pipeline's work/timing plus the (possibly
    /// shared) cache's counters — all read back from the registry series.
    PipelineStats stats() const;
    const std::shared_ptr<ProfileCache>& cache() const { return cache_; }
    const PipelineOptions& options() const { return opts_; }
    /// Registry the pipeline records into (owned unless one was injected).
    obs::MetricsRegistry* metrics() const { return metrics_; }

private:
    void init_metrics();
    void record_sat_delta(const SatClusterStats& d);

    PipelineOptions opts_;
    std::shared_ptr<ProfileCache> cache_;

    std::shared_ptr<obs::MetricsRegistry> owned_metrics_;
    obs::MetricsRegistry* metrics_ = nullptr;
    obs::Counter c_macro_compiles_, c_macro_reuses_, c_atomic_profiles_;
    obs::Counter c_fingerprint_ns_, c_sdg_ns_, c_cluster_ns_, c_codegen_ns_, c_contract_ns_,
        c_total_ns_;
    obs::Counter c_sat_iterations_, c_sat_conflicts_, c_sat_decisions_, c_sat_propagations_,
        c_sat_budget_exhausted_, c_deadline_misses_;
    obs::Gauge g_sat_first_k_, g_sat_final_k_, g_sat_vars_, g_sat_clauses_;
    obs::Histogram h_sdg_, h_cluster_, h_codegen_, h_contract_, h_task_;
    obs::Gauge g_ready_depth_;
};

} // namespace sbd::codegen

#endif
