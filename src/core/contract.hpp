#ifndef SBD_CORE_CONTRACT_HPP
#define SBD_CORE_CONTRACT_HPP

#include <span>
#include <string>
#include <vector>

#include "core/clustering.hpp"
#include "core/profile.hpp"
#include "core/sdg.hpp"

namespace sbd::codegen {

/// One finding of the post-compilation contract checker.
struct ContractIssue {
    enum class Kind {
        Structure,          ///< function/cluster count or attribution mismatch
        MissingRead,        ///< function omits an input the SDG says it needs
        ExtraRead,          ///< function declares an input no cluster node uses
        WrongWrite,         ///< output written by the wrong function, twice, or never
        MissingOrder,       ///< a consumed value may not be ready under the PDG
        UnjustifiedPdgEdge, ///< PDG edge with no SDG dataflow behind it
    };
    Kind kind;
    bool fatal; ///< true for soundness violations; false for reusability loss
    std::string message;
};

const char* to_string(ContractIssue::Kind k);

/// Checks that `profile` is a sound exported interface for macro block `m`
/// given its SDG and the clustering it was generated from — the modular
/// compilation contract of Section 4 made executable:
///
///  - one interface function per cluster, in cluster order;
///  - function c reads input i iff the SDG has a direct edge from input
///    node i into some node of cluster c (transitively-needed inputs reach
///    the function through slots, not parameters);
///  - every macro output is returned by exactly the cluster the output
///    attribution assigns its writer node to;
///  - for every SDG dataflow edge u -> v crossing out of every cluster
///    containing v, some cluster containing u precedes it in the PDG's
///    transitive closure (otherwise a legal call order could read the
///    slot of u before it is written);
///  - every declared PDG edge (a, b) is backed by SDG reachability from a
///    node of a to a node of b (violations are non-fatal: they cost
///    reusability, not correctness).
///
/// Returns every finding; empty means the profile honours the contract.
std::vector<ContractIssue> check_profile_contract(const MacroBlock& m,
                                                  std::span<const Profile* const> sub_profiles,
                                                  const Sdg& sdg, const Clustering& clustering,
                                                  const Profile& profile);

/// True iff some finding is fatal.
bool any_fatal(const std::vector<ContractIssue>& issues);

} // namespace sbd::codegen

#endif
