#ifndef SBD_CORE_CODEGEN_HPP
#define SBD_CORE_CODEGEN_HPP

#include <span>

#include "core/clustering.hpp"
#include "core/ir.hpp"
#include "core/sdg.hpp"

namespace sbd::codegen {

/// Output of the profile-generation step (Section 4, step 2): the generated
/// code of the macro block and the profile it exports to its own users.
struct CodegenResult {
    CodeUnit code;
    Profile profile;
};

/// Generates the interface functions of `m` from a clustering of its SDG:
/// one function per cluster, whose body calls the sub-block interface
/// functions of the cluster in (a serialization of) SDG order, with guard
/// counters around nodes shared between overlapping clusters, and
/// synthesizes the PDG of `m` from the cluster dependencies.
///
/// Requirements checked (std::logic_error on violation): every internal
/// node belongs to >= 1 cluster; nodes shared between clusters are
/// backward-closed within each cluster containing them (the guard-counter
/// correctness invariant); the synthesized PDG is acyclic.
CodegenResult generate_code(const MacroBlock& m, std::span<const Profile* const> sub_profiles,
                            const Sdg& sdg, const Clustering& clustering);

} // namespace sbd::codegen

#endif
