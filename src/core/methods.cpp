#include "core/methods.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace sbd::codegen {

namespace {

/// Per-node reach information used by the clustering methods.
struct Reach {
    std::vector<graph::Bitset> out_of; ///< per SDG node: output ports it reaches
    std::vector<graph::Bitset> in_of_output; ///< per output port: inputs it depends on
};

Reach compute_reach(const Sdg& sdg) {
    Reach r;
    const std::size_t n = sdg.graph.num_nodes();
    const std::size_t nin = sdg.num_inputs();
    const std::size_t nout = sdg.num_outputs();
    r.out_of.assign(n, graph::Bitset(nout));
    r.in_of_output.assign(nout, graph::Bitset(nin));
    for (std::size_t o = 0; o < nout; ++o) {
        const auto reaching = sdg.graph.reaching_to(sdg.output_nodes[o]);
        for (std::size_t v = 0; v < n; ++v)
            if (reaching.test(v)) r.out_of[v].set(o);
        for (std::size_t i = 0; i < nin; ++i)
            if (reaching.test(sdg.input_nodes[i])) r.in_of_output[o].set(i);
    }
    return r;
}

void sort_clusters(Clustering& c) {
    for (auto& cl : c.clusters) std::sort(cl.begin(), cl.end());
}

} // namespace

std::string canonical_options(const ClusterOptions& opts) {
    // Add-a-field tripwire: if ClusterOptions grows, its size changes and
    // this assert fires, forcing the new field into the serialization below
    // (and thereby into the profile-cache fingerprint). 32 bytes on LP64 =
    // bool+pad, int, bool+pad, uint64, bool, bool + pad. A new field that
    // packs into existing padding keeps the size unchanged — serialize it
    // here anyway and bump kKeySchemaVersion, as sat_budget_degrade did.
    static_assert(sizeof(void*) != 8 || sizeof(ClusterOptions) == 32,
                  "ClusterOptions changed: serialize the new field in "
                  "canonical_options() and bump kKeySchemaVersion in fingerprint.cpp");
    std::string s;
    s += "fold_update_into_get=" + std::to_string(opts.fold_update_into_get ? 1 : 0);
    s += ";sat_start_k=" + std::to_string(opts.sat_start_k);
    s += ";sat_symmetry_breaking=" + std::to_string(opts.sat_symmetry_breaking ? 1 : 0);
    s += ";sat_conflict_budget=" + std::to_string(opts.sat_conflict_budget);
    s += ";verify_contracts=" + std::to_string(opts.verify_contracts ? 1 : 0);
    s += ";sat_budget_degrade=" + std::to_string(opts.sat_budget_degrade ? 1 : 0);
    return s;
}

Clustering cluster_monolithic(const Sdg& sdg) {
    Clustering c;
    c.method = Method::Monolithic;
    if (!sdg.internal_nodes.empty()) c.clusters.push_back(sdg.internal_nodes);
    sort_clusters(c);
    return c;
}

Clustering cluster_singletons(const Sdg& sdg) {
    Clustering c;
    c.method = Method::Singletons;
    for (const auto v : sdg.internal_nodes) c.clusters.push_back({v});
    return c;
}

Clustering cluster_stepget(const Sdg& sdg) {
    const Reach r = compute_reach(sdg);
    Clustering c;
    c.method = Method::StepGet;
    std::vector<graph::NodeId> get_cluster, step_cluster;
    for (const auto v : sdg.internal_nodes)
        (r.out_of[v].any() ? get_cluster : step_cluster).push_back(v);
    if (!get_cluster.empty()) c.clusters.push_back(std::move(get_cluster));
    if (!step_cluster.empty()) c.clusters.push_back(std::move(step_cluster));
    sort_clusters(c);
    return c;
}

Clustering cluster_dynamic(const Sdg& sdg, const ClusterOptions& opts) {
    const Reach r = compute_reach(sdg);
    const std::size_t nout = sdg.num_outputs();

    Clustering c;
    c.method = Method::Dynamic;

    // Group outputs by their exact input-dependency set: outputs with equal
    // In(y) can share an interface function without losing reusability;
    // outputs with different In(y) cannot.
    std::vector<graph::Bitset> class_key;   ///< In-set per class
    std::vector<graph::Bitset> class_mask;  ///< member outputs per class
    for (std::size_t o = 0; o < nout; ++o) {
        std::size_t cls = class_key.size();
        for (std::size_t k = 0; k < class_key.size(); ++k)
            if (class_key[k] == r.in_of_output[o]) {
                cls = k;
                break;
            }
        if (cls == class_key.size()) {
            class_key.push_back(r.in_of_output[o]);
            class_mask.emplace_back(nout);
        }
        class_mask[cls].set(o);
    }

    // One cluster per class: the union of the backward cones of its outputs.
    // Cones are backward-closed, so they may overlap (the paper's Figure 4);
    // overlap is what keeps the function count minimal.
    for (std::size_t k = 0; k < class_key.size(); ++k) {
        std::vector<graph::NodeId> cone;
        for (const auto v : sdg.internal_nodes)
            if (r.out_of[v].intersects(class_mask[k])) cone.push_back(v);
        c.clusters.push_back(std::move(cone));
    }

    // Internal nodes feeding no output (typically state updates) form the
    // trailing update cluster...
    std::vector<graph::NodeId> leftover;
    for (const auto v : sdg.internal_nodes)
        if (r.out_of[v].none()) leftover.push_back(v);

    if (!leftover.empty()) {
        // ... unless they can be folded into one of the output clusters
        // without adding false input-output dependencies: folding into class
        // k is safe iff every input the merged cluster would (transitively,
        // at the profile level) depend on is already in In(class k).
        bool folded = false;
        if (opts.fold_update_into_get) {
            for (std::size_t k = 0; k < class_key.size() && !folded; ++k) {
                graph::Bitset required(sdg.num_inputs());
                for (const auto v : leftover) {
                    for (const auto u : sdg.graph.predecessors(v)) {
                        if (sdg.is_input(u)) {
                            required.set(static_cast<std::size_t>(sdg.nodes[u].port));
                        } else if (r.out_of[u].any() && !r.out_of[u].intersects(class_mask[k])) {
                            // u lives in other output clusters: a PDG edge
                            // from each of them would be synthesized, pulling
                            // in their whole input sets.
                            for (std::size_t k2 = 0; k2 < class_key.size(); ++k2)
                                if (r.out_of[u].intersects(class_mask[k2]))
                                    required |= class_key[k2];
                        }
                    }
                }
                if (required.is_subset_of(class_key[k])) {
                    auto& cl = c.clusters[k];
                    cl.insert(cl.end(), leftover.begin(), leftover.end());
                    folded = true;
                }
            }
        }
        if (!folded) c.clusters.push_back(std::move(leftover));
    }

    sort_clusters(c);
    return c;
}

Clustering cluster_disjoint_greedy(const Sdg& sdg) {
    Clustering c;
    c.method = Method::DisjointGreedy;
    const auto order = sdg.graph.topological_order();
    assert(order.has_value());

    std::vector<graph::NodeId> pending = sdg.internal_nodes; // still singleton
    const auto try_clustering = [&](const Clustering& candidate) {
        return check_validity(sdg, candidate).valid();
    };
    for (const auto v : *order) {
        if (!sdg.is_internal(v)) continue;
        pending.erase(std::find(pending.begin(), pending.end(), v));
        bool placed = false;
        for (std::size_t k = 0; k < c.clusters.size() && !placed; ++k) {
            Clustering candidate = c;
            candidate.clusters[k].push_back(v);
            std::sort(candidate.clusters[k].begin(), candidate.clusters[k].end());
            for (const auto w : pending) candidate.clusters.push_back({w});
            if (try_clustering(candidate)) {
                c.clusters[k].push_back(v);
                std::sort(c.clusters[k].begin(), c.clusters[k].end());
                placed = true;
            }
        }
        if (!placed) c.clusters.push_back({v});
    }
    sort_clusters(c);
    return c;
}

Clustering cluster(const Sdg& sdg, Method method, const ClusterOptions& opts,
                   SatClusterStats* sat_stats) {
    switch (method) {
    case Method::Monolithic: return cluster_monolithic(sdg);
    case Method::StepGet: return cluster_stepget(sdg);
    case Method::Dynamic: return cluster_dynamic(sdg, opts);
    case Method::DisjointSat: return cluster_disjoint_sat(sdg, opts, sat_stats);
    case Method::DisjointGreedy: return cluster_disjoint_greedy(sdg);
    case Method::Singletons: return cluster_singletons(sdg);
    }
    assert(false);
    return {};
}

} // namespace sbd::codegen
