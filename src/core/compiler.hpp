#ifndef SBD_CORE_COMPILER_HPP
#define SBD_CORE_COMPILER_HPP

#include <memory>
#include <optional>
#include <unordered_map>

#include "core/codegen.hpp"
#include "core/methods.hpp"

namespace sbd::codegen {

/// Per-block compilation artifact. Atomic blocks carry their intrinsic
/// profile; macro blocks additionally carry the SDG, the clustering and the
/// generated code.
struct CompiledBlock {
    BlockPtr block;
    Profile profile;
    std::optional<Sdg> sdg;
    std::optional<Clustering> clustering;
    std::optional<CodeUnit> code;
};

/// The result of modular, bottom-up compilation of a block hierarchy. The
/// defining property (tested extensively) is that each macro block was
/// compiled from its sub-blocks' *profiles only* — the compiler never looks
/// through a sub-block's boundary.
class CompiledSystem {
public:
    const CompiledBlock& at(const Block& b) const;
    bool contains(const Block& b) const { return blocks_.contains(&b); }
    const CompiledBlock& root() const { return at(*root_); }
    BlockPtr root_block() const { return root_; }

    /// Total pseudocode line count over all generated macro blocks — the
    /// whole-system code-size measure used in the experiments.
    std::size_t total_lines() const;
    /// Total replicated (node, cluster) memberships over all macro blocks.
    std::size_t total_replication() const;
    /// Total number of generated interface functions.
    std::size_t total_functions() const;

    /// All compiled macro blocks (deterministic post-order of first visit).
    const std::vector<const Block*>& order() const { return order_; }

private:
    friend CompiledSystem compile_hierarchy(BlockPtr, Method, const ClusterOptions&,
                                            SatClusterStats*);
    friend class Pipeline;
    std::unordered_map<const Block*, CompiledBlock> blocks_;
    std::vector<const Block*> order_;
    BlockPtr root_;
};

/// Compiles every macro block reachable from `root`, bottom-up, with the
/// given clustering method. Shared block types are compiled once. Throws
/// SdgCycleError if some macro block's SDG is cyclic (the paper's rejection
/// case), ModelError on malformed diagrams.
///
/// `sat_stats`, if given, accumulates SAT statistics over all compiled
/// blocks (DisjointSat only).
CompiledSystem compile_hierarchy(BlockPtr root, Method method,
                                 const ClusterOptions& opts = {},
                                 SatClusterStats* sat_stats = nullptr);

} // namespace sbd::codegen

#endif
