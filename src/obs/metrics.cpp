#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace sbd::obs {

const char* to_string(MetricKind k) {
    switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
    }
    return "?";
}

std::uint64_t Histogram::count() const {
    if (cells_ == nullptr) return 0;
    std::uint64_t n = 0;
    for (std::size_t b = 0; b <= num_bounds_; ++b)
        n += cells_[b].load(std::memory_order_relaxed);
    return n;
}

std::vector<std::uint64_t> exponential_bounds(std::uint64_t start, double factor,
                                              std::size_t count) {
    if (start == 0 || factor <= 1.0 || count == 0)
        throw std::invalid_argument("exponential_bounds: need start > 0, factor > 1, count > 0");
    std::vector<std::uint64_t> bounds;
    bounds.reserve(count);
    double edge = static_cast<double>(start);
    for (std::size_t i = 0; i < count; ++i) {
        if (edge >= 0x1p64) break; // would not fit u64: saturated
        const auto b = static_cast<std::uint64_t>(edge);
        if (!bounds.empty() && b <= bounds.back()) break; // saturated
        bounds.push_back(b);
        edge *= factor;
    }
    return bounds;
}

namespace {

/// Canonical series key: name + sorted labels, with separators that cannot
/// appear in metric names.
std::string series_key(const std::string& name, const Labels& labels) {
    std::string key = name;
    for (const auto& [k, v] : labels) {
        key += '\x1f';
        key += k;
        key += '\x1e';
        key += v;
    }
    return key;
}

} // namespace

const Sample* Snapshot::find(const std::string& name, const Labels& labels) const {
    for (const Sample& s : samples) {
        if (s.name != name) continue;
        if (!labels.empty() && s.labels != labels) continue;
        return &s;
    }
    return nullptr;
}

MetricsRegistry::Instrument& MetricsRegistry::find_or_create(const std::string& name,
                                                             const std::string& help,
                                                             Labels labels, MetricKind kind,
                                                             std::vector<std::uint64_t> bounds) {
    std::sort(labels.begin(), labels.end());
    const std::string key = series_key(name, labels);
    std::lock_guard lock(m_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
        if (it->second->kind != kind)
            throw std::logic_error("metrics registry: series '" + name +
                                   "' re-registered as a different kind");
        return *it->second;
    }
    Instrument inst;
    inst.name = name;
    inst.help = help;
    inst.labels = std::move(labels);
    inst.kind = kind;
    std::size_t ncells = 1;
    if (kind == MetricKind::Histogram) {
        if (bounds.empty()) throw std::invalid_argument("histogram: empty bounds");
        if (!std::is_sorted(bounds.begin(), bounds.end()) ||
            std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end())
            throw std::invalid_argument("histogram: bounds must be strictly increasing");
        inst.bounds = std::move(bounds);
        ncells = inst.bounds.size() + 2; // buckets incl. +Inf, then sum
    }
    inst.cells = std::make_unique<std::atomic<std::uint64_t>[]>(ncells);
    for (std::size_t i = 0; i < ncells; ++i) inst.cells[i].store(0, std::memory_order_relaxed);
    instruments_.push_back(std::move(inst));
    Instrument& stored = instruments_.back();
    index_.emplace(key, &stored);
    return stored;
}

Counter MetricsRegistry::counter(const std::string& name, const std::string& help,
                                 Labels labels) {
    return Counter(&find_or_create(name, help, std::move(labels), MetricKind::Counter, {})
                        .cells[0]);
}

Gauge MetricsRegistry::gauge(const std::string& name, const std::string& help, Labels labels) {
    return Gauge(
        &find_or_create(name, help, std::move(labels), MetricKind::Gauge, {}).cells[0]);
}

Histogram MetricsRegistry::histogram(const std::string& name, std::vector<std::uint64_t> bounds,
                                     const std::string& help, Labels labels) {
    Instrument& inst = find_or_create(name, help, std::move(labels), MetricKind::Histogram,
                                      std::move(bounds));
    return Histogram(inst.cells.get(), inst.bounds.data(), inst.bounds.size());
}

Snapshot MetricsRegistry::snapshot() const {
    Snapshot snap;
    {
        std::lock_guard lock(m_);
        snap.samples.reserve(instruments_.size());
        for (const Instrument& inst : instruments_) {
            Sample s;
            s.name = inst.name;
            s.help = inst.help;
            s.labels = inst.labels;
            s.kind = inst.kind;
            switch (inst.kind) {
            case MetricKind::Counter:
                s.value = inst.cells[0].load(std::memory_order_relaxed);
                break;
            case MetricKind::Gauge:
                s.gauge = static_cast<std::int64_t>(
                    inst.cells[0].load(std::memory_order_relaxed));
                break;
            case MetricKind::Histogram: {
                s.bounds = inst.bounds;
                s.buckets.resize(inst.bounds.size() + 1);
                for (std::size_t b = 0; b < s.buckets.size(); ++b) {
                    s.buckets[b] = inst.cells[b].load(std::memory_order_relaxed);
                    s.value += s.buckets[b];
                }
                s.sum = inst.cells[inst.bounds.size() + 1].load(std::memory_order_relaxed);
                break;
            }
            }
            snap.samples.push_back(std::move(s));
        }
    }
    std::sort(snap.samples.begin(), snap.samples.end(),
              [](const Sample& a, const Sample& b) {
                  if (a.name != b.name) return a.name < b.name;
                  return a.labels < b.labels;
              });
    return snap;
}

std::size_t MetricsRegistry::size() const {
    std::lock_guard lock(m_);
    return instruments_.size();
}

} // namespace sbd::obs
