#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace sbd::obs {

namespace {

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string escape_label(const std::string& v) {
    std::string out;
    out.reserve(v.size());
    for (const char c : v) {
        if (c == '\\') out += "\\\\";
        else if (c == '"') out += "\\\"";
        else if (c == '\n') out += "\\n";
        else out += c;
    }
    return out;
}

/// JSON string escaping (control chars, quote, backslash).
std::string escape_json(const std::string& v) {
    std::string out;
    out.reserve(v.size());
    for (const char c : v) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string label_block(const Labels& labels, const char* extra_key = nullptr,
                        const std::string& extra_val = {}) {
    if (labels.empty() && extra_key == nullptr) return {};
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
        if (!first) out += ',';
        first = false;
        out += k + "=\"" + escape_label(v) + "\"";
    }
    if (extra_key != nullptr) {
        if (!first) out += ',';
        out += std::string(extra_key) + "=\"" + extra_val + "\"";
    }
    out += '}';
    return out;
}

std::string u64s(std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

std::string i64s(std::int64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    return buf;
}

} // namespace

std::string to_prometheus(const Snapshot& snap) {
    std::string out;
    std::string prev_name;
    for (const Sample& s : snap.samples) {
        if (s.name != prev_name) {
            prev_name = s.name;
            if (!s.help.empty()) out += "# HELP " + s.name + " " + s.help + "\n";
            out += "# TYPE " + s.name + " " + to_string(s.kind) + "\n";
        }
        switch (s.kind) {
        case MetricKind::Counter:
            out += s.name + label_block(s.labels) + " " + u64s(s.value) + "\n";
            break;
        case MetricKind::Gauge:
            out += s.name + label_block(s.labels) + " " + i64s(s.gauge) + "\n";
            break;
        case MetricKind::Histogram: {
            std::uint64_t cum = 0;
            for (std::size_t b = 0; b < s.buckets.size(); ++b) {
                cum += s.buckets[b];
                const std::string le =
                    b < s.bounds.size() ? u64s(s.bounds[b]) : std::string("+Inf");
                out += s.name + "_bucket" + label_block(s.labels, "le", le) + " " +
                       u64s(cum) + "\n";
            }
            out += s.name + "_sum" + label_block(s.labels) + " " + u64s(s.sum) + "\n";
            out += s.name + "_count" + label_block(s.labels) + " " + u64s(s.value) + "\n";
            break;
        }
        }
    }
    return out;
}

std::string to_json(const Snapshot& snap) {
    std::string out = "{\"metrics\": [";
    for (std::size_t i = 0; i < snap.samples.size(); ++i) {
        const Sample& s = snap.samples[i];
        if (i > 0) out += ',';
        out += "\n  {\"name\": \"";
        out += escape_json(s.name);
        out += "\", \"kind\": \"";
        out += to_string(s.kind);
        out += "\", \"labels\": {";
        for (std::size_t l = 0; l < s.labels.size(); ++l) {
            if (l > 0) out += ", ";
            out += "\"";
            out += escape_json(s.labels[l].first);
            out += "\": \"";
            out += escape_json(s.labels[l].second);
            out += "\"";
        }
        out += "}";
        switch (s.kind) {
        case MetricKind::Counter: out += ", \"value\": " + u64s(s.value); break;
        case MetricKind::Gauge: out += ", \"value\": " + i64s(s.gauge); break;
        case MetricKind::Histogram: {
            out += ", \"count\": " + u64s(s.value) + ", \"sum\": " + u64s(s.sum) +
                   ", \"buckets\": [";
            for (std::size_t b = 0; b < s.buckets.size(); ++b) {
                if (b > 0) out += ", ";
                out += "{\"le\": \"";
                out += b < s.bounds.size() ? u64s(s.bounds[b]) : std::string("+Inf");
                out += "\", \"count\": " + u64s(s.buckets[b]) + "}";
            }
            out += "]";
            break;
        }
        }
        out += "}";
    }
    out += "\n]}\n";
    return out;
}

std::string to_table(const Snapshot& snap) {
    std::string out;
    char line[512];
    std::snprintf(line, sizeof(line), "%-44s | %-9s | %s\n", "metric", "kind", "value");
    out += line;
    out += std::string(80, '-') + "\n";
    for (const Sample& s : snap.samples) {
        const std::string name = s.name + label_block(s.labels);
        std::string value;
        switch (s.kind) {
        case MetricKind::Counter: value = u64s(s.value); break;
        case MetricKind::Gauge: value = i64s(s.gauge); break;
        case MetricKind::Histogram: {
            const double mean =
                s.value == 0 ? 0.0
                             : static_cast<double>(s.sum) / static_cast<double>(s.value);
            char buf[96];
            std::snprintf(buf, sizeof(buf), "count=%" PRIu64 " sum=%" PRIu64 " mean=%.1f",
                          s.value, s.sum, mean);
            value = buf;
            break;
        }
        }
        std::snprintf(line, sizeof(line), "%-44s | %-9s | %s\n", name.c_str(),
                      to_string(s.kind), value.c_str());
        out += line;
    }
    return out;
}

std::string to_chrome_trace(const std::vector<SpanEvent>& events) {
    // Complete ("X") events; ts/dur in microseconds as required by the
    // Trace Event Format. pid is fixed (one process), tid is the dense
    // per-collector thread index.
    std::string out = "{\"traceEvents\": [";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const SpanEvent& e = events[i];
        if (i > 0) out += ',';
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "\n  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                      "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u",
                      escape_json(e.name).c_str(), escape_json(e.cat).c_str(),
                      static_cast<double>(e.start_ns) / 1000.0,
                      static_cast<double>(e.dur_ns) / 1000.0, e.tid);
        out += buf;
        out += ", \"args\": {\"depth\": " + u64s(e.depth);
        if (!e.detail.empty()) out += ", \"detail\": \"" + escape_json(e.detail) + "\"";
        out += "}}";
    }
    out += "\n], \"displayTimeUnit\": \"ms\"}\n";
    return out;
}

// ------------------------------------------------------------ binary format
//
// File = magic "SBDO" | version u32 | count u64 | events. Each event:
// str name | str detail | str cat | start u64 | dur u64 | tid u32 |
// depth u32, where str = length u64 + bytes. Little-endian throughout.

namespace {

constexpr char kMagic[4] = {'S', 'B', 'D', 'O'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kSaneCount = 1ull << 28;

void put_u32(std::vector<std::uint8_t>& buf, std::uint32_t x) {
    for (int i = 0; i < 4; ++i) buf.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& buf, std::uint64_t x) {
    for (int i = 0; i < 8; ++i) buf.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}
void put_str(std::vector<std::uint8_t>& buf, const std::string& s) {
    put_u64(buf, s.size());
    buf.insert(buf.end(), s.begin(), s.end());
}

struct SpanReader {
    const std::vector<std::uint8_t>& data;
    std::size_t pos = 0;

    void need(std::size_t n) const {
        if (pos + n > data.size()) throw std::runtime_error("span file: truncated");
    }
    std::uint32_t u32() {
        need(4);
        std::uint32_t x = 0;
        for (int i = 0; i < 4; ++i) x |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
        return x;
    }
    std::uint64_t u64() {
        need(8);
        std::uint64_t x = 0;
        for (int i = 0; i < 8; ++i) x |= static_cast<std::uint64_t>(data[pos++]) << (8 * i);
        return x;
    }
    std::string str() {
        const std::uint64_t n = u64();
        if (n > kSaneCount) throw std::runtime_error("span file: oversized string");
        need(n);
        std::string s(reinterpret_cast<const char*>(data.data() + pos),
                      static_cast<std::size_t>(n));
        pos += n;
        return s;
    }
};

} // namespace

std::vector<std::uint8_t> serialize_spans(const std::vector<SpanEvent>& events) {
    std::vector<std::uint8_t> buf;
    for (const char c : kMagic) buf.push_back(static_cast<std::uint8_t>(c));
    put_u32(buf, kVersion);
    put_u64(buf, events.size());
    for (const SpanEvent& e : events) {
        put_str(buf, e.name);
        put_str(buf, e.detail);
        put_str(buf, e.cat);
        put_u64(buf, e.start_ns);
        put_u64(buf, e.dur_ns);
        put_u32(buf, e.tid);
        put_u32(buf, e.depth);
    }
    return buf;
}

std::vector<SpanEvent> deserialize_spans(const std::vector<std::uint8_t>& data) {
    SpanReader r{data};
    r.need(4);
    if (std::memcmp(data.data(), kMagic, 4) != 0)
        throw std::runtime_error("span file: bad magic");
    r.pos = 4;
    if (r.u32() != kVersion) throw std::runtime_error("span file: unknown version");
    const std::uint64_t n = r.u64();
    if (n > kSaneCount) throw std::runtime_error("span file: oversized count");
    std::vector<SpanEvent> events;
    events.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        SpanEvent e;
        e.name = r.str();
        e.detail = r.str();
        e.cat = r.str();
        e.start_ns = r.u64();
        e.dur_ns = r.u64();
        e.tid = r.u32();
        e.depth = r.u32();
        events.push_back(std::move(e));
    }
    if (r.pos != data.size()) throw std::runtime_error("span file: trailing garbage");
    return events;
}

namespace {

bool write_all(const std::string& path, const char* data, std::size_t size) {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) {
        std::fprintf(stderr, "cannot write '%s'\n", path.c_str());
        return false;
    }
    f.write(data, static_cast<std::streamsize>(size));
    if (!f) {
        std::fprintf(stderr, "short write to '%s'\n", path.c_str());
        return false;
    }
    return true;
}

bool ends_with(const std::string& s, const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

} // namespace

bool write_metrics_file(const Snapshot& snap, const std::string& path,
                        const std::string& format) {
    std::string fmt = format;
    if (fmt.empty()) {
        if (ends_with(path, ".json")) fmt = "json";
        else if (ends_with(path, ".txt") || ends_with(path, ".tbl")) fmt = "table";
        else fmt = "prom";
    }
    std::string body;
    if (fmt == "json") body = to_json(snap);
    else if (fmt == "table") body = to_table(snap);
    else if (fmt == "prom") body = to_prometheus(snap);
    else {
        std::fprintf(stderr, "unknown metrics format '%s'\n", fmt.c_str());
        return false;
    }
    return write_all(path, body.data(), body.size());
}

bool write_trace_file(const std::vector<SpanEvent>& events, const std::string& path) {
    if (ends_with(path, ".json")) {
        const std::string body = to_chrome_trace(events);
        return write_all(path, body.data(), body.size());
    }
    const std::vector<std::uint8_t> buf = serialize_spans(events);
    return write_all(path, reinterpret_cast<const char*>(buf.data()), buf.size());
}

} // namespace sbd::obs
