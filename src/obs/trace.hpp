#ifndef SBD_OBS_TRACE_HPP
#define SBD_OBS_TRACE_HPP

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace sbd::obs {

/// One completed span: a named, nested interval on one thread. Timestamps
/// are nanoseconds since the owning collector's construction.
struct SpanEvent {
    std::string name;   ///< phase name (static at the call site)
    std::string detail; ///< free-form argument, e.g. the block type name
    std::string cat;    ///< category ("compile", "engine", "tool", ...)
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint32_t tid = 0;   ///< dense per-collector thread index
    std::uint32_t depth = 0; ///< nesting depth on that thread at open time
};

/// Collects spans from any number of threads into per-thread ring buffers.
///
/// Exactly one collector can be *installed* (process-global) at a time;
/// TraceSpan reads the installed collector with a single relaxed atomic
/// load, so an uninstalled program pays one branch per span site. Each
/// recording thread gets its own bounded buffer (first span registers it,
/// under the collector mutex; the registration is cached thread-locally),
/// so recording contends only on the thread's own buffer mutex — held for
/// the few ns of one event append, and in practice uncontended because
/// drain() is rare.
///
/// When a thread's buffer is full, further events on that thread are
/// dropped and counted — tracing degrades, it never blocks or reallocates.
class TraceCollector {
public:
    explicit TraceCollector(std::size_t ring_capacity = 1 << 14);
    ~TraceCollector();
    TraceCollector(const TraceCollector&) = delete;
    TraceCollector& operator=(const TraceCollector&) = delete;

    /// Makes this collector the process-global span sink. The collector
    /// must outlive both the installation and every span opened under it.
    void install();
    /// Detaches (only if this collector is the installed one).
    void uninstall();
    static TraceCollector* active();

    /// Takes every buffered event (all threads), sorted by (start, tid),
    /// and clears the buffers. Safe to call while other threads record.
    std::vector<SpanEvent> drain();
    /// Events dropped so far because some thread's buffer was full
    /// (cumulative; drain() does not reset it).
    std::uint64_t dropped() const;

    std::uint64_t now_ns() const {
        return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                              std::chrono::steady_clock::now() - epoch_)
                                              .count());
    }

private:
    friend class TraceSpan;

    struct Ring {
        std::mutex m;
        std::vector<SpanEvent> events; ///< bounded by the collector capacity
        std::uint64_t dropped = 0;
        std::uint32_t tid = 0;
        std::uint32_t depth = 0; ///< owning thread only; no lock needed
    };

    Ring* ring_for_this_thread();
    void record(Ring* ring, SpanEvent&& ev);

    const std::uint64_t serial_; ///< globally unique; guards TLS ring caching
    const std::size_t capacity_;
    const std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex m_;
    std::deque<Ring> rings_; ///< deque: stable addresses for TLS caching
    std::unordered_map<std::thread::id, Ring*> ring_of_;
};

/// RAII span: opens on construction against the installed collector (no-op
/// when none is installed) and records one SpanEvent on destruction. The
/// `detail` argument is only copied when a collector is active.
class TraceSpan {
public:
    explicit TraceSpan(const char* name, const char* cat = "sbd",
                       std::string_view detail = {});
    ~TraceSpan();
    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

private:
    TraceCollector* col_ = nullptr;
    TraceCollector::Ring* ring_ = nullptr;
    const char* name_ = nullptr;
    const char* cat_ = nullptr;
    std::string detail_;
    std::uint64_t start_ns_ = 0;
    std::uint32_t depth_ = 0;
};

} // namespace sbd::obs

#endif
