#ifndef SBD_OBS_EXPORT_HPP
#define SBD_OBS_EXPORT_HPP

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sbd::obs {

/// Prometheus text exposition format (version 0.0.4): one `# HELP` /
/// `# TYPE` pair per metric name, histograms as cumulative `_bucket{le=}` /
/// `_sum` / `_count` series. Deterministic: samples come pre-sorted from
/// Snapshot.
std::string to_prometheus(const Snapshot& snap);

/// Machine-readable JSON dump: {"metrics": [{name, kind, labels, ...}]}.
std::string to_json(const Snapshot& snap);

/// Human-readable aligned table (histograms as count/sum/mean).
std::string to_table(const Snapshot& snap);

/// Chrome `about:tracing` / Perfetto JSON: {"traceEvents": [...]} with one
/// complete ("ph":"X") event per span, timestamps in microseconds.
std::string to_chrome_trace(const std::vector<SpanEvent>& events);

/// Compact binary span format (magic "SBDO", version 1, little-endian).
std::vector<std::uint8_t> serialize_spans(const std::vector<SpanEvent>& events);
/// Parses a serialized span file; throws std::runtime_error on any
/// structural problem (truncation, bad magic/version, oversized counts).
std::vector<SpanEvent> deserialize_spans(const std::vector<std::uint8_t>& data);

/// File helpers used by the tools. Format is chosen by extension:
/// metrics: ".json" => JSON, ".txt"/".tbl" => table, else Prometheus text
/// (an explicit `format` of "prom"/"json"/"table" overrides);
/// trace: ".json" => Chrome trace, else binary SBDO.
/// Return false (with a message on stderr) on I/O failure.
bool write_metrics_file(const Snapshot& snap, const std::string& path,
                        const std::string& format = {});
bool write_trace_file(const std::vector<SpanEvent>& events, const std::string& path);

} // namespace sbd::obs

#endif
