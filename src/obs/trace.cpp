#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>

namespace sbd::obs {

namespace {

std::atomic<TraceCollector*> g_active{nullptr};
std::atomic<std::uint64_t> g_serial{0};

/// Per-thread cache of "my ring in the currently installed collector",
/// keyed by the collector's unique serial so a recycled address can never
/// alias a previous collector's cache entry.
struct TlsRingCache {
    std::uint64_t serial = 0;
    void* ring = nullptr; ///< TraceCollector::Ring*, type-erased (Ring is private)
};
thread_local TlsRingCache tls_ring;

} // namespace

TraceCollector::TraceCollector(std::size_t ring_capacity)
    : serial_(g_serial.fetch_add(1, std::memory_order_relaxed) + 1),
      capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      epoch_(std::chrono::steady_clock::now()) {}

TraceCollector::~TraceCollector() { uninstall(); }

void TraceCollector::install() { g_active.store(this, std::memory_order_release); }

void TraceCollector::uninstall() {
    TraceCollector* expected = this;
    g_active.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel);
}

TraceCollector* TraceCollector::active() { return g_active.load(std::memory_order_acquire); }

TraceCollector::Ring* TraceCollector::ring_for_this_thread() {
    if (tls_ring.serial == serial_) return static_cast<Ring*>(tls_ring.ring);
    std::lock_guard lock(m_);
    const auto id = std::this_thread::get_id();
    Ring*& slot = ring_of_[id];
    if (slot == nullptr) {
        rings_.emplace_back();
        slot = &rings_.back();
        slot->tid = static_cast<std::uint32_t>(rings_.size() - 1);
        slot->events.reserve(capacity_);
    }
    tls_ring.serial = serial_;
    tls_ring.ring = slot;
    return slot;
}

void TraceCollector::record(Ring* ring, SpanEvent&& ev) {
    std::lock_guard lock(ring->m);
    if (ring->events.size() >= capacity_) {
        ++ring->dropped;
        return;
    }
    ev.tid = ring->tid;
    ring->events.push_back(std::move(ev));
}

std::vector<SpanEvent> TraceCollector::drain() {
    std::vector<SpanEvent> out;
    std::lock_guard lock(m_);
    for (Ring& ring : rings_) {
        std::lock_guard rl(ring.m);
        out.insert(out.end(), std::make_move_iterator(ring.events.begin()),
                   std::make_move_iterator(ring.events.end()));
        ring.events.clear();
    }
    std::stable_sort(out.begin(), out.end(), [](const SpanEvent& a, const SpanEvent& b) {
        if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
        return a.tid < b.tid;
    });
    return out;
}

std::uint64_t TraceCollector::dropped() const {
    std::uint64_t n = 0;
    std::lock_guard lock(m_);
    for (const Ring& ring : rings_) {
        std::lock_guard rl(const_cast<Ring&>(ring).m);
        n += ring.dropped;
    }
    return n;
}

TraceSpan::TraceSpan(const char* name, const char* cat, std::string_view detail) {
    TraceCollector* col = TraceCollector::active();
    if (col == nullptr) return;
    col_ = col;
    ring_ = col->ring_for_this_thread();
    name_ = name;
    cat_ = cat;
    detail_ = detail;
    depth_ = ring_->depth++;
    start_ns_ = col->now_ns();
}

TraceSpan::~TraceSpan() {
    if (col_ == nullptr) return;
    --ring_->depth;
    SpanEvent ev;
    ev.name = name_;
    ev.detail = std::move(detail_);
    ev.cat = cat_;
    ev.start_ns = start_ns_;
    ev.dur_ns = col_->now_ns() - start_ns_;
    ev.depth = depth_;
    col_->record(ring_, std::move(ev));
}

} // namespace sbd::obs
