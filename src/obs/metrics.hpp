#ifndef SBD_OBS_METRICS_HPP
#define SBD_OBS_METRICS_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sbd::obs {

/// Sorted (key, value) pairs identifying one series of a named metric.
/// Callers may pass labels in any order; the registry canonicalizes.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { Counter, Gauge, Histogram };

const char* to_string(MetricKind k);

/// Handle to a monotonically increasing counter cell. A default-constructed
/// handle is *detached*: every operation is a no-op on one predictable
/// branch, which is how instrumented code compiles to near-zero cost when
/// no registry is attached.
class Counter {
public:
    Counter() = default;

    void inc(std::uint64_t n = 1) {
        if (cell_ != nullptr) cell_->fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const {
        return cell_ == nullptr ? 0 : cell_->load(std::memory_order_relaxed);
    }
    explicit operator bool() const { return cell_ != nullptr; }

private:
    friend class MetricsRegistry;
    explicit Counter(std::atomic<std::uint64_t>* cell) : cell_(cell) {}
    std::atomic<std::uint64_t>* cell_ = nullptr;
};

/// Handle to a signed instantaneous value (queue depth, pool occupancy).
/// Stored as the two's-complement bit pattern in a uint64 cell so the whole
/// registry shares one cell type.
class Gauge {
public:
    Gauge() = default;

    void set(std::int64_t v) {
        if (cell_ != nullptr)
            cell_->store(static_cast<std::uint64_t>(v), std::memory_order_relaxed);
    }
    void add(std::int64_t d) {
        if (cell_ != nullptr)
            cell_->fetch_add(static_cast<std::uint64_t>(d), std::memory_order_relaxed);
    }
    std::int64_t value() const {
        return cell_ == nullptr
                   ? 0
                   : static_cast<std::int64_t>(cell_->load(std::memory_order_relaxed));
    }
    explicit operator bool() const { return cell_ != nullptr; }

private:
    friend class MetricsRegistry;
    explicit Gauge(std::atomic<std::uint64_t>* cell) : cell_(cell) {}
    std::atomic<std::uint64_t>* cell_ = nullptr;
};

/// Handle to a fixed-bucket histogram: `bounds` are inclusive upper edges,
/// with an implicit +Inf bucket at the end. observe() is two relaxed
/// fetch_adds plus a short linear scan over the (typically ~12) bounds.
class Histogram {
public:
    Histogram() = default;

    void observe(std::uint64_t v) {
        if (cells_ == nullptr) return;
        std::size_t b = 0;
        while (b < num_bounds_ && v > bounds_[b]) ++b;
        cells_[b].fetch_add(1, std::memory_order_relaxed);
        cells_[num_bounds_ + 1].fetch_add(v, std::memory_order_relaxed); // sum
    }
    std::uint64_t count() const;
    std::uint64_t sum() const {
        return cells_ == nullptr
                   ? 0
                   : cells_[num_bounds_ + 1].load(std::memory_order_relaxed);
    }
    explicit operator bool() const { return cells_ != nullptr; }

private:
    friend class MetricsRegistry;
    Histogram(std::atomic<std::uint64_t>* cells, const std::uint64_t* bounds,
              std::size_t num_bounds)
        : cells_(cells), bounds_(bounds), num_bounds_(num_bounds) {}
    /// Layout: buckets[0..num_bounds_] (last = +Inf), then sum.
    std::atomic<std::uint64_t>* cells_ = nullptr;
    const std::uint64_t* bounds_ = nullptr;
    std::size_t num_bounds_ = 0;
};

/// `count` upper bounds starting at `start`, each `factor` times the last —
/// the standard latency-histogram shape (e.g. 250ns * 4^k).
std::vector<std::uint64_t> exponential_bounds(std::uint64_t start, double factor,
                                              std::size_t count);

/// RAII wall-clock timer: observes elapsed nanoseconds into a histogram at
/// scope exit. Detached-handle safe — with no registry attached the only
/// cost is the two clock reads.
class ScopedNsTimer {
public:
    explicit ScopedNsTimer(Histogram h)
        : h_(h), t0_(std::chrono::steady_clock::now()) {}
    ~ScopedNsTimer() {
        if (armed_) h_.observe(elapsed_ns());
    }
    ScopedNsTimer(const ScopedNsTimer&) = delete;
    ScopedNsTimer& operator=(const ScopedNsTimer&) = delete;

    std::uint64_t elapsed_ns() const {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0_)
                .count());
    }
    /// Stop without recording (e.g. the timed operation failed and a
    /// dedicated failure counter tells that story instead).
    void cancel() { armed_ = false; }

private:
    Histogram h_;
    std::chrono::steady_clock::time_point t0_;
    bool armed_ = true;
};

/// One series in a snapshot. For counters `value` is set; for gauges
/// `gauge`; for histograms `bounds`/`buckets` (non-cumulative, one extra
/// +Inf bucket), `sum` and `value` (= total count).
struct Sample {
    std::string name;
    std::string help;
    Labels labels;
    MetricKind kind = MetricKind::Counter;
    std::uint64_t value = 0;
    std::int64_t gauge = 0;
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> buckets;
    std::uint64_t sum = 0;
};

/// Point-in-time read of every registered series, sorted by (name, labels)
/// so exports are deterministic.
struct Snapshot {
    std::vector<Sample> samples;

    /// First sample with this name (and labels, if given); nullptr if absent.
    const Sample* find(const std::string& name, const Labels& labels = {}) const;
};

/// Thread-safe named-metric registry. Registration (counter()/gauge()/
/// histogram()) takes a mutex and is idempotent: the same (name, labels)
/// returns a handle to the same cell, so independent components can share
/// series. The hot path — handle operations — is lock-free relaxed atomics
/// on cells whose addresses are stable for the registry's lifetime.
class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    Counter counter(const std::string& name, const std::string& help = {},
                    Labels labels = {});
    Gauge gauge(const std::string& name, const std::string& help = {}, Labels labels = {});
    /// `bounds` must be non-empty and strictly increasing. Re-registering
    /// an existing histogram series ignores `bounds` and returns the
    /// original cells (bounds are part of the series identity check).
    Histogram histogram(const std::string& name, std::vector<std::uint64_t> bounds,
                        const std::string& help = {}, Labels labels = {});

    /// Consistent read of every series: registration is locked out while
    /// the cells are read, so a snapshot never sees a half-registered
    /// instrument (individual cells are read relaxed; in-flight increments
    /// may or may not be included).
    Snapshot snapshot() const;

    std::size_t size() const;

private:
    struct Instrument {
        std::string name;
        std::string help;
        Labels labels;
        MetricKind kind = MetricKind::Counter;
        std::vector<std::uint64_t> bounds; ///< histograms only
        std::unique_ptr<std::atomic<std::uint64_t>[]> cells;
    };

    Instrument& find_or_create(const std::string& name, const std::string& help,
                               Labels labels, MetricKind kind,
                               std::vector<std::uint64_t> bounds);

    mutable std::mutex m_;
    std::deque<Instrument> instruments_; ///< deque: stable addresses
    std::unordered_map<std::string, Instrument*> index_;
};

/// Null-safe registration: a detached handle when `reg` is nullptr. This is
/// the idiom instrumented components use so "no registry" costs one branch
/// per operation and zero allocations.
inline Counter counter_in(MetricsRegistry* reg, const std::string& name,
                          const std::string& help = {}, Labels labels = {}) {
    return reg == nullptr ? Counter{} : reg->counter(name, help, std::move(labels));
}
inline Gauge gauge_in(MetricsRegistry* reg, const std::string& name,
                      const std::string& help = {}, Labels labels = {}) {
    return reg == nullptr ? Gauge{} : reg->gauge(name, help, std::move(labels));
}
inline Histogram histogram_in(MetricsRegistry* reg, const std::string& name,
                              std::vector<std::uint64_t> bounds, const std::string& help = {},
                              Labels labels = {}) {
    return reg == nullptr ? Histogram{}
                          : reg->histogram(name, std::move(bounds), help, std::move(labels));
}

} // namespace sbd::obs

#endif
