#ifndef SBD_RUNTIME_TRACE_HPP
#define SBD_RUNTIME_TRACE_HPP

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/compiler.hpp"
#include "core/exec.hpp"

namespace sbd::runtime {

/// The recorded I/O history of one instance: per instant, the values of all
/// input ports and all output ports. The unit of regression: a trace
/// recorded from the engine replays bit-exactly on a fresh instance and on
/// the reference simulator.
struct Trace {
    std::size_t num_inputs = 0;
    std::size_t num_outputs = 0;
    std::vector<std::vector<double>> inputs;  ///< one row per instant
    std::vector<std::vector<double>> outputs; ///< one row per instant

    std::size_t instants() const { return inputs.size(); }
};

/// Bitwise trace equality (distinguishes -0.0 from 0.0; identical NaN
/// patterns compare equal) — the "bit-exact" in the regression contract.
bool bit_equal(const Trace& a, const Trace& b);

/// Accumulates one instance's per-instant I/O. Typical use: after every
/// Engine::tick(), record(pool.inputs(id), pool.outputs(id)).
class TraceRecorder {
public:
    TraceRecorder(std::size_t num_inputs, std::size_t num_outputs);

    void record(std::span<const double> inputs, std::span<const double> outputs);

    const Trace& trace() const { return trace_; }
    Trace take() { return std::move(trace_); }

private:
    Trace trace_;
};

/// Saves a trace. Paths ending in ".csv" get the textual format (header
/// line, then one `t in... out...` row per instant, %.17g so doubles
/// round-trip exactly); anything else gets the binary format (magic "SBDT",
/// version, dimensions, raw little-endian doubles). Throws std::runtime_error
/// on I/O failure.
void save_trace(const Trace& t, const std::string& path);

/// Loads a trace saved by save_trace(), auto-detecting the format from the
/// file's leading bytes. Throws std::runtime_error on malformed input.
Trace load_trace(const std::string& path);

/// Replays the trace's inputs through a fresh instance of `root` and
/// returns the resulting trace (same inputs, freshly computed outputs).
/// `executable` selects the backend; nullptr = interpreter.
Trace replay(const codegen::CompiledSystem& sys, BlockPtr root, const Trace& t,
             const std::shared_ptr<const codegen::Executable>& executable = nullptr);

/// Replays the trace's inputs through the reference simulator on the
/// flattened diagram and returns the resulting trace.
Trace simulate_reference(const MacroBlock& root, const Trace& t);

} // namespace sbd::runtime

#endif
