#ifndef SBD_RUNTIME_POOL_HPP
#define SBD_RUNTIME_POOL_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/exec.hpp"

namespace sbd::runtime {

/// Generational handle to a pooled instance. A handle goes stale when its
/// slot is destroyed: the pool bumps the slot's generation, so a later
/// create() reusing the same slot yields a distinguishable id and stale
/// accesses throw instead of silently touching the new occupant.
struct InstanceId {
    std::uint32_t slot = UINT32_MAX;
    std::uint32_t generation = 0;

    bool operator==(const InstanceId&) const = default;
};

/// Maps one instance's state across a live model upgrade. The pool calls
/// migrate() once per live instance while preparing a rebind: `old_*` carry
/// the outgoing instance's persistent state (Instance::save_state layout)
/// and its arena I/O rows; `new_state` arrives pre-filled with the state of
/// a freshly initialized instance of the new model, `new_in`/`new_out`
/// arrive zeroed. Implementations copy whatever carries over and leave the
/// rest at init values. The interface lives here (not in src/upgrade) so
/// the runtime stays independent of the upgrade planner; upgrade's
/// MigrationPlan is the production implementation.
class StateMigrator {
public:
    virtual ~StateMigrator() = default;

    virtual void migrate(std::span<const double> old_state, std::span<const double> old_in,
                         std::span<const double> old_out, std::span<double> new_state,
                         std::span<double> new_in, std::span<double> new_out) const = 0;
};

/// A StateMigrator that carries nothing: every instance restarts from the
/// new model's init values with zeroed I/O (the drain-and-replace path).
class DrainMigrator final : public StateMigrator {
public:
    void migrate(std::span<const double>, std::span<const double>, std::span<const double>,
                 std::span<double>, std::span<double>, std::span<double>) const override {}
};

/// A pool of executable instances of one compiled block, with contiguous
/// reusable slots and arena-allocated per-instance input/output buffers.
///
/// Capacity is fixed at construction: the I/O arena is a single contiguous
/// array (slot-strided), and the spans handed out by inputs()/outputs()
/// stay valid for the pool's lifetime — which is what lets the engine's
/// worker threads step disjoint slot ranges without any synchronization.
///
/// Destroyed slots go on a free list and are recycled by the next create();
/// recycling re-initializes the instance state and zeroes its I/O buffers,
/// so a recycled slot is indistinguishable from a fresh one.
class InstancePool {
public:
    /// `executable` selects the execution backend for every instance this
    /// pool builds; nullptr means the interpreter (the historical default),
    /// so existing callers are unchanged.
    InstancePool(const codegen::CompiledSystem& sys, BlockPtr root, std::size_t capacity,
                 std::shared_ptr<const codegen::Executable> executable = nullptr);

    /// Creates (or recycles) an instance; throws std::length_error when the
    /// pool is full.
    InstanceId create();
    /// Destroys a live instance; its slot becomes reusable. Throws
    /// std::invalid_argument on a stale or invalid id.
    ///
    /// Handle-churn edge: each destroy bumps the slot's generation, and a
    /// slot whose generation reaches UINT32_MAX is *retired* — taken out of
    /// circulation instead of wrapping to 0 — so an ancient handle minted
    /// before 2^32 destroys of one slot can never validate against a new
    /// occupant (no ABA, ever). Retired slots reduce the usable capacity.
    void destroy(InstanceId id);
    /// Re-initializes a live instance's state and zeroes its I/O buffers.
    void reset(InstanceId id);

    bool alive(InstanceId id) const;
    std::size_t size() const { return live_.size(); }
    std::size_t capacity() const { return slots_.size(); }
    /// Slots permanently taken out of circulation by generation exhaustion.
    std::size_t retired() const { return retired_; }

    codegen::Instance& instance(InstanceId id) { return *slots_[check(id)].inst; }
    std::span<double> inputs(InstanceId id) { return inputs_of(check(id)); }
    std::span<double> outputs(InstanceId id) { return outputs_of(check(id)); }
    std::span<const double> inputs(InstanceId id) const { return inputs_of(check(id)); }
    std::span<const double> outputs(InstanceId id) const { return outputs_of(check(id)); }

    std::size_t num_inputs() const { return nin_; }
    std::size_t num_outputs() const { return nout_; }

    /// Dense list of live slot indices, in creation order (destroy()
    /// swap-removes). The engine chunks this list across worker threads.
    const std::vector<std::uint32_t>& live_slots() const { return live_; }

    /// Advances the instance in `slot` one synchronous instant, reading its
    /// input buffer and writing its output buffer. Allocation-free; safe to
    /// call concurrently for distinct slots.
    void step_slot(std::uint32_t slot);

    /// The id currently occupying `slot` (live slots only).
    InstanceId id_of(std::uint32_t slot) const { return {slot, slots_[slot].generation}; }

    const codegen::CompiledSystem& system() const { return *sys_; }
    BlockPtr root() const { return root_; }
    /// The backend recipe instances are stamped from ("interp" or "native").
    const codegen::Executable& executable() const { return *exec_; }

    /// Serialized footprint of one instance's snapshot: the interpreter's
    /// persistent state (Instance::state_size) plus the input and output
    /// buffers. Identical for every slot of the pool; requires a live id
    /// because instances are built lazily on first create().
    std::size_t state_size(InstanceId id) const;
    /// The complete state of one live instance as a flat double blob —
    /// persistent state, then inputs, then outputs — suitable for wire
    /// transfer (the serve layer's SNAPSHOT) or migration.
    std::vector<double> snapshot_state(InstanceId id) const;
    /// Restores a blob written by snapshot_state() into a live instance of
    /// the same compiled system. Throws std::invalid_argument on a size
    /// mismatch; on success the instance is bit-identical to the snapshot
    /// source, including its I/O buffers.
    void restore_state(InstanceId id, std::span<const double> blob);

    /// Opaque token produced by prepare_rebind() and consumed by
    /// commit_rebind(): the complete replacement population (one migrated
    /// instance per live slot, in live-list order) plus the new arena.
    /// Treat the fields as private; they are public only so the serve layer
    /// can stage tokens for all shards before committing any of them.
    struct Rebind {
        const codegen::CompiledSystem* sys = nullptr;
        BlockPtr root;
        std::shared_ptr<const codegen::Executable> exec;
        std::size_t nin = 0, nout = 0, stride = 0;
        std::vector<double> arena;
        std::vector<std::unique_ptr<codegen::Instance>> insts; ///< by live_ order
    };

    /// Phase 1 of a hot-swap: builds a fully migrated replacement population
    /// for the new compiled model without touching any live state. For each
    /// live slot it instantiates the new executable, runs `migrate` from the
    /// old instance's snapshot into the fresh instance's state/I-O, and
    /// restores the result. May throw (instantiation or an irreconcilable
    /// migration); the pool is untouched either way, so a multi-shard caller
    /// can prepare every shard before committing any — no torn fleet.
    /// `executable` nullptr selects the interpreter, as in the constructor.
    /// Must not overlap step_slot() (externally synchronous, like create()).
    Rebind prepare_rebind(const codegen::CompiledSystem& sys, BlockPtr root,
                          std::shared_ptr<const codegen::Executable> executable,
                          const StateMigrator& migrate) const;

    /// Phase 2: installs a prepared rebind. Never throws apart from
    /// allocation failure (everything fallible happened in phase 1). Slot
    /// numbering, generations, the live list, the free list, retirement and
    /// therefore every outstanding InstanceId survive unchanged — only the
    /// instances, the I/O arena (ports may differ) and the compiled-system/
    /// root/executable bindings are replaced. Non-live slots drop their
    /// cached instance so the next create() stamps from the new executable.
    void commit_rebind(Rebind&& r);

    /// Testing hook (wraparound regression tests): forces the generation
    /// counter of a non-live slot. Throws std::invalid_argument for a live
    /// or out-of-range slot, or a slot already retired.
    void debug_set_generation(std::uint32_t slot, std::uint32_t generation);

    /// Complete structural snapshot of the pool for durable checkpoints:
    /// not just the live instances' state (snapshot_state) but the exact
    /// slot machinery around them — free-list order, live-list order and
    /// per-slot generations — so that after restore_image() the pool
    /// assigns the same slots and generations to future create() calls as
    /// the original would have. That determinism is what makes journal
    /// replay reproduce handles (and therefore client-visible ids)
    /// bit-for-bit.
    struct Image {
        std::vector<std::uint32_t> free_order;  ///< free_ verbatim (LIFO order)
        std::vector<std::uint32_t> live_order;  ///< live_ verbatim (creation order)
        std::vector<std::uint32_t> generations; ///< per slot, size == capacity
        std::vector<std::vector<double>> blobs; ///< snapshot_state per live_order entry
    };

    Image image() const;

    /// Rebuilds the pool from an image. Only valid on a pool with no live
    /// instances (fresh, or fully destroyed) whose capacity and compiled
    /// model match the image's origin. Throws std::invalid_argument on any
    /// structural mismatch; the pool is unchanged when it throws before
    /// instantiating, and must be considered unusable if an instantiate or
    /// blob restore fails midway (recovery treats that as fatal-for-this-
    /// checkpoint and falls back).
    void restore_image(const Image& img);

private:
    struct Slot {
        std::unique_ptr<codegen::Instance> inst; ///< built on first use, then reused
        std::uint32_t generation = 0;
        std::uint32_t live_pos = 0; ///< position in live_, valid while live
        bool live = false;
    };

    std::uint32_t check(InstanceId id) const;
    std::span<double> inputs_of(std::uint32_t slot) { return {arena_.data() + slot * stride_, nin_}; }
    std::span<double> outputs_of(std::uint32_t slot) {
        return {arena_.data() + slot * stride_ + nin_, nout_};
    }
    std::span<const double> inputs_of(std::uint32_t slot) const {
        return {arena_.data() + slot * stride_, nin_};
    }
    std::span<const double> outputs_of(std::uint32_t slot) const {
        return {arena_.data() + slot * stride_ + nin_, nout_};
    }

    const codegen::CompiledSystem* sys_;
    BlockPtr root_;
    std::shared_ptr<const codegen::Executable> exec_;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> free_; ///< reusable slot indices (LIFO)
    std::vector<std::uint32_t> live_;
    std::size_t retired_ = 0; ///< slots lost to generation exhaustion
    std::vector<double> arena_; ///< capacity * (num_inputs + num_outputs)
    std::size_t nin_;
    std::size_t nout_;
    std::size_t stride_;
};

} // namespace sbd::runtime

#endif
