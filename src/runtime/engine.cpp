#include "runtime/engine.hpp"

#include <algorithm>

namespace sbd::runtime {

Engine::Engine(const codegen::CompiledSystem& sys, BlockPtr root, EngineConfig cfg)
    : pool_(sys, std::move(root), cfg.capacity), cfg_(cfg) {
    cfg_.threads = std::max<std::size_t>(1, cfg_.threads);
    cfg_.chunk = std::max<std::size_t>(1, cfg_.chunk);
    workers_.reserve(cfg_.threads - 1);
    for (std::size_t t = 1; t < cfg_.threads; ++t)
        workers_.emplace_back([this] { worker_loop(); });
}

Engine::~Engine() {
    {
        std::lock_guard lk(m_);
        stop_ = true;
    }
    cv_start_.notify_all();
    for (std::thread& w : workers_) w.join();
}

std::vector<InstanceId> Engine::create(std::size_t n) {
    std::vector<InstanceId> ids;
    ids.reserve(n);
    for (std::size_t i = 0; i < n; ++i) ids.push_back(pool_.create());
    return ids;
}

void Engine::run_chunks() {
    const std::vector<std::uint32_t>& live = pool_.live_slots();
    const std::size_t n = live.size();
    try {
        for (;;) {
            const std::size_t begin = next_chunk_.fetch_add(cfg_.chunk, std::memory_order_relaxed);
            if (begin >= n) break;
            const std::size_t end = std::min(n, begin + cfg_.chunk);
            for (std::size_t i = begin; i < end; ++i) pool_.step_slot(live[i]);
        }
    } catch (...) {
        std::lock_guard lk(m_);
        if (!error_) error_ = std::current_exception();
        // Drain the remaining work so the other threads finish the tick.
        next_chunk_.store(n, std::memory_order_relaxed);
    }
}

void Engine::tick() {
    if (pool_.size() == 0) {
        ++ticks_;
        return;
    }
    if (workers_.empty()) {
        for (const std::uint32_t slot : pool_.live_slots()) pool_.step_slot(slot);
        ++ticks_;
        return;
    }
    {
        std::lock_guard lk(m_);
        next_chunk_.store(0, std::memory_order_relaxed);
        done_ = 0;
        ++epoch_;
    }
    cv_start_.notify_all();
    run_chunks();
    {
        std::unique_lock lk(m_);
        cv_done_.wait(lk, [this] { return done_ == workers_.size(); });
        if (error_) {
            const std::exception_ptr e = error_;
            error_ = nullptr;
            std::rethrow_exception(e);
        }
    }
    ++ticks_;
}

void Engine::tick(std::size_t n) {
    for (std::size_t t = 0; t < n; ++t) tick();
}

void Engine::worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock lk(m_);
            cv_start_.wait(lk, [&] { return stop_ || epoch_ != seen; });
            if (stop_) return;
            seen = epoch_;
        }
        run_chunks();
        {
            std::lock_guard lk(m_);
            if (++done_ == workers_.size()) cv_done_.notify_one();
        }
    }
}

} // namespace sbd::runtime
