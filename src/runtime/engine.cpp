#include "runtime/engine.hpp"

#include <algorithm>
#include <chrono>

#include "obs/trace.hpp"
#include "resilience/fault.hpp"

namespace sbd::runtime {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_since(Clock::time_point t0) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count());
}

} // namespace

Engine::Engine(const codegen::CompiledSystem& sys, BlockPtr root, EngineConfig cfg)
    : pool_(sys, std::move(root), cfg.capacity, cfg.executable), cfg_(cfg) {
    cfg_.threads = std::max<std::size_t>(1, cfg_.threads);
    cfg_.chunk = std::max<std::size_t>(1, cfg_.chunk);
    cfg_.step_sample = std::max<std::size_t>(1, cfg_.step_sample);
    deadline_ = resilience::Deadline::after_ms(cfg_.deadline_ms);
    if (cfg_.metrics != nullptr) {
        obs_on_ = true;
        obs::MetricsRegistry* reg = cfg_.metrics;
        ticks_total_ = reg->counter("sbd_engine_ticks_total", "synchronous instants executed");
        steps_total_ = reg->counter("sbd_engine_steps_total", "instance steps executed");
        tick_ns_ = reg->histogram("sbd_engine_tick_ns", obs::exponential_bounds(1000, 4.0, 14),
                                  "whole-tick latency, nanoseconds");
        step_ns_ = reg->histogram(
            "sbd_engine_step_ns", obs::exponential_bounds(250, 4.0, 12),
            "per-instance step latency, nanoseconds (sampled 1-in-step_sample)");
        pool_live_ = reg->gauge("sbd_engine_pool_live", "live instances in the pool");
        pool_capacity_ = reg->gauge("sbd_engine_pool_capacity", "instance pool capacity");
        pool_capacity_.set(static_cast<std::int64_t>(cfg_.capacity));
        deadline_misses_ = reg->counter("sbd_engine_deadline_misses_total",
                                        "ticks refused because the deadline had expired");
    }
    workers_.reserve(cfg_.threads - 1);
    for (std::size_t t = 1; t < cfg_.threads; ++t)
        workers_.emplace_back([this] { worker_loop(); });
}

Engine::~Engine() {
    {
        std::lock_guard lk(m_);
        stop_ = true;
    }
    cv_start_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void Engine::rebind(const codegen::CompiledSystem& sys, BlockPtr root,
                    std::shared_ptr<const codegen::Executable> executable,
                    const StateMigrator& migrate) {
    InstancePool::Rebind prepared =
        pool_.prepare_rebind(sys, std::move(root), executable, migrate);
    pool_.commit_rebind(std::move(prepared));
    cfg_.executable = std::move(executable);
}

std::vector<InstanceId> Engine::create(std::size_t n) {
    std::vector<InstanceId> ids;
    ids.reserve(n);
    for (std::size_t i = 0; i < n; ++i) ids.push_back(pool_.create());
    return ids;
}

void Engine::step_range(const std::vector<std::uint32_t>& live, std::size_t begin,
                        std::size_t end) {
    if (!obs_on_) {
        for (std::size_t i = begin; i < end; ++i) pool_.step_slot(live[i]);
        return;
    }
    // Sampling by absolute index keeps the sampled set independent of how
    // the live range was carved into chunks (thread count, chunk size).
    for (std::size_t i = begin; i < end; ++i) {
        if (i % cfg_.step_sample == 0) {
            const auto t0 = Clock::now();
            pool_.step_slot(live[i]);
            step_ns_.observe(ns_since(t0));
        } else {
            pool_.step_slot(live[i]);
        }
    }
}

void Engine::run_chunks() {
    const std::vector<std::uint32_t>& live = pool_.live_slots();
    const std::size_t n = live.size();
    try {
        for (;;) {
            const std::size_t begin = next_chunk_.fetch_add(cfg_.chunk, std::memory_order_relaxed);
            if (begin >= n) break;
            step_range(live, begin, std::min(n, begin + cfg_.chunk));
        }
    } catch (...) {
        std::lock_guard lk(m_);
        if (!error_) error_ = std::current_exception();
        // Drain the remaining work so the other threads finish the tick.
        next_chunk_.store(n, std::memory_order_relaxed);
    }
}

void Engine::tick() {
    obs::TraceSpan span("tick", "engine");
    // Cooperative cancellation between batches: checked before any worker
    // is released, so an expired deadline leaves every instance at the
    // state of the last completed instant — no torn ticks.
    if (deadline_.due("engine.deadline")) {
        deadline_misses_.inc();
        throw resilience::DeadlineExceeded("engine: deadline expired before tick " +
                                           std::to_string(ticks_ + 1));
    }
    if (SBD_FAULT_HIT("engine.tick"))
        throw resilience::FaultInjected("engine: injected tick fault at tick " +
                                        std::to_string(ticks_ + 1));
    Clock::time_point t0;
    if (obs_on_) t0 = Clock::now();
    const std::size_t live_count = pool_.size();
    if (live_count != 0) {
        if (workers_.empty()) {
            const std::vector<std::uint32_t>& live = pool_.live_slots();
            step_range(live, 0, live.size());
        } else {
            {
                std::lock_guard lk(m_);
                next_chunk_.store(0, std::memory_order_relaxed);
                done_ = 0;
                ++epoch_;
            }
            cv_start_.notify_all();
            run_chunks();
            {
                std::unique_lock lk(m_);
                cv_done_.wait(lk, [this] { return done_ == workers_.size(); });
                if (error_) {
                    const std::exception_ptr e = error_;
                    error_ = nullptr;
                    std::rethrow_exception(e);
                }
            }
        }
    }
    ++ticks_;
    if (obs_on_) {
        ticks_total_.inc();
        steps_total_.inc(live_count);
        pool_live_.set(static_cast<std::int64_t>(live_count));
        tick_ns_.observe(ns_since(t0));
    }
}

void Engine::tick(std::size_t n) {
    for (std::size_t t = 0; t < n; ++t) tick();
}

void Engine::worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
        {
            std::unique_lock lk(m_);
            cv_start_.wait(lk, [&] { return stop_ || epoch_ != seen; });
            if (stop_) return;
            seen = epoch_;
        }
        run_chunks();
        {
            std::lock_guard lk(m_);
            if (++done_ == workers_.size()) cv_done_.notify_one();
        }
    }
}

} // namespace sbd::runtime
