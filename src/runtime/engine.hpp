#ifndef SBD_RUNTIME_ENGINE_HPP
#define SBD_RUNTIME_ENGINE_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "resilience/budget.hpp"
#include "runtime/pool.hpp"

namespace sbd::runtime {

/// Streaming twin of codegen::lcg_input_trace: the same generator, one row
/// at a time, so drivers can feed millions of instance-instants without
/// materializing the whole trace. Seeding each instance with a distinct
/// seed (e.g. base + instance index) gives independent, reproducible
/// workloads regardless of thread count.
struct LcgInputSource {
    std::uint64_t state = 1;

    explicit LcgInputSource(std::uint64_t seed) : state(seed) {}

    void fill(std::span<double> row) {
        for (double& v : row) {
            state = state * 6364136223846793005ULL + 1442695040888963407ULL;
            v = static_cast<double>((state >> 33) & 0xFFFF) / 4096.0 - 8.0;
        }
    }
};

struct EngineConfig {
    std::size_t capacity = 1024; ///< maximum live instances (pool size)
    /// Backend recipe for every pooled instance (see codegen::Executable).
    /// nullptr = the interpreter built from (sys, root) — existing callers
    /// and `--backend=interp` both land here; `--backend=native` passes a
    /// native executable and nothing else in the engine changes.
    std::shared_ptr<const codegen::Executable> executable;
    std::size_t threads = 1;     ///< total threads stepping a tick, incl. the caller
    std::size_t chunk = 64;      ///< instances per work unit on the tick hot path
    /// Observability sink for tick/step latency histograms, throughput
    /// counters and pool gauges. nullptr (the default) disables engine
    /// instrumentation entirely: the hot path takes one branch per tick and
    /// zero per step, and outputs are bit-identical to an uninstrumented
    /// build.
    obs::MetricsRegistry* metrics = nullptr;
    /// Per-instance step latency is sampled 1-in-step_sample (clamped to
    /// >= 1) so instrumentation stays off the clock on the step hot path.
    std::size_t step_sample = 16;
    /// Wall-clock budget for the engine's lifetime, armed at construction
    /// and checked cooperatively between batches (at every tick() start,
    /// before workers are released). 0 = no deadline. Expiry throws
    /// resilience::DeadlineExceeded; instances keep the state of the last
    /// completed tick, so the caller can drain or extend.
    std::uint64_t deadline_ms = 0;
};

/// Hosts a pool of independent instances of one compiled block and advances
/// all of them one synchronous instant per tick(), batched across a
/// persistent thread pool.
///
/// Scheduling: each tick the dense live-slot list is carved into fixed-size
/// chunks claimed via a single atomic fetch_add — no locks and no allocation
/// on the hot path; the caller's thread participates as the K-th worker.
/// Instances are mutually independent (each steps against its own state and
/// its own arena I/O buffers), so the result is bitwise identical for every
/// thread count and every chunk size.
///
/// Protocol per tick: write each live instance's inputs via
/// pool().inputs(id), call tick(), read pool().outputs(id). Structural
/// operations (create/destroy/reset) must not overlap a running tick() —
/// the engine is externally synchronous, like the blocks it hosts.
class Engine {
public:
    Engine(const codegen::CompiledSystem& sys, BlockPtr root, EngineConfig cfg = {});
    ~Engine();

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    InstancePool& pool() { return pool_; }
    const InstancePool& pool() const { return pool_; }

    InstanceId create() { return pool_.create(); }
    std::vector<InstanceId> create(std::size_t n);
    void destroy(InstanceId id) { pool_.destroy(id); }

    /// Hot-swaps the hosted model between instants: prepares and commits an
    /// InstancePool rebind (see prepare_rebind/commit_rebind) under the
    /// given migrator. Like create()/destroy(), this is a structural
    /// operation — it must not overlap a running tick(); the engine is
    /// externally synchronous, so the caller provides the quiesce point
    /// (the serve layer uses its exclusive state lock, which by construction
    /// is an instant boundary). Throws without touching any instance when
    /// instantiation or migration fails.
    void rebind(const codegen::CompiledSystem& sys, BlockPtr root,
                std::shared_ptr<const codegen::Executable> executable,
                const StateMigrator& migrate);

    /// Advances every live instance one synchronous instant.
    void tick();
    /// Convenience: tick() n times (inputs held constant between ticks
    /// unless the caller rewrites them — mainly for benchmarks).
    void tick(std::size_t n);

    /// Number of ticks executed so far.
    std::uint64_t instants() const { return ticks_; }
    std::size_t threads() const { return workers_.size() + 1; }

private:
    void worker_loop();
    void run_chunks();
    void step_range(const std::vector<std::uint32_t>& live, std::size_t begin, std::size_t end);

    InstancePool pool_;
    EngineConfig cfg_;
    resilience::Deadline deadline_; ///< armed at construction when deadline_ms != 0
    std::vector<std::thread> workers_;

    // Observability (all detached when cfg_.metrics == nullptr).
    bool obs_on_ = false;
    obs::Counter ticks_total_, steps_total_, deadline_misses_;
    obs::Histogram tick_ns_, step_ns_;
    obs::Gauge pool_live_, pool_capacity_;

    // Tick coordination. The mutex/condvars only frame a tick (start/finish
    // barriers); work distribution inside a tick is the lock-free counter.
    std::mutex m_;
    std::condition_variable cv_start_;
    std::condition_variable cv_done_;
    std::uint64_t epoch_ = 0; ///< guarded by m_; bumped to release workers
    std::size_t done_ = 0;    ///< guarded by m_; workers finished this epoch
    bool stop_ = false;       ///< guarded by m_
    std::atomic<std::size_t> next_chunk_{0};
    std::exception_ptr error_; ///< guarded by m_; first failure in a tick
    std::uint64_t ticks_ = 0;
};

} // namespace sbd::runtime

#endif
