#include "runtime/pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace sbd::runtime {

InstancePool::InstancePool(const codegen::CompiledSystem& sys, BlockPtr root,
                           std::size_t capacity,
                           std::shared_ptr<const codegen::Executable> executable)
    : sys_(&sys), root_(std::move(root)), exec_(std::move(executable)), slots_(capacity),
      nin_(root_->num_inputs()), nout_(root_->num_outputs()), stride_(nin_ + nout_) {
    if (exec_ == nullptr) exec_ = codegen::make_executable(*sys_, root_);
    if (capacity == 0) throw std::invalid_argument("InstancePool: capacity must be > 0");
    if (capacity > UINT32_MAX) throw std::length_error("InstancePool: capacity too large");
    arena_.assign(capacity * stride_, 0.0);
    free_.reserve(capacity);
    live_.reserve(capacity);
    for (std::size_t s = capacity; s > 0; --s) free_.push_back(static_cast<std::uint32_t>(s - 1));
}

InstanceId InstancePool::create() {
    if (free_.empty()) throw std::length_error("InstancePool: pool is full");
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    Slot& s = slots_[slot];
    if (s.inst)
        s.inst->init(); // recycled slot: reset persistent state
    else
        s.inst = exec_->instantiate();
    std::fill_n(arena_.data() + slot * stride_, stride_, 0.0);
    s.live = true;
    s.live_pos = static_cast<std::uint32_t>(live_.size());
    live_.push_back(slot);
    return {slot, s.generation};
}

void InstancePool::destroy(InstanceId id) {
    const std::uint32_t slot = check(id);
    Slot& s = slots_[slot];
    s.live = false;
    ++s.generation; // stale handles now fail check()
    // Swap-remove from the dense live list.
    const std::uint32_t last = live_.back();
    live_[s.live_pos] = last;
    slots_[last].live_pos = s.live_pos;
    live_.pop_back();
    // Generation exhaustion: a wrap back to 0 would let a handle minted
    // 2^32 destroys ago validate against a fresh occupant. Retire the slot
    // instead of recycling it — correctness over capacity.
    if (s.generation == UINT32_MAX)
        ++retired_;
    else
        free_.push_back(slot);
}

void InstancePool::reset(InstanceId id) {
    const std::uint32_t slot = check(id);
    slots_[slot].inst->init();
    std::fill_n(arena_.data() + slot * stride_, stride_, 0.0);
}

bool InstancePool::alive(InstanceId id) const {
    return id.slot < slots_.size() && slots_[id.slot].live &&
           slots_[id.slot].generation == id.generation;
}

std::uint32_t InstancePool::check(InstanceId id) const {
    if (!alive(id)) throw std::invalid_argument("InstancePool: stale or invalid instance id");
    return id.slot;
}

void InstancePool::step_slot(std::uint32_t slot) {
    slots_[slot].inst->step_instant_into(inputs_of(slot), outputs_of(slot));
}

std::size_t InstancePool::state_size(InstanceId id) const {
    return slots_[check(id)].inst->state_size() + stride_;
}

std::vector<double> InstancePool::snapshot_state(InstanceId id) const {
    const std::uint32_t slot = check(id);
    std::vector<double> blob;
    blob.reserve(slots_[slot].inst->state_size() + stride_);
    slots_[slot].inst->save_state(blob);
    const std::span<const double> in = inputs_of(slot);
    const std::span<const double> out = outputs_of(slot);
    blob.insert(blob.end(), in.begin(), in.end());
    blob.insert(blob.end(), out.begin(), out.end());
    return blob;
}

void InstancePool::restore_state(InstanceId id, std::span<const double> blob) {
    const std::uint32_t slot = check(id);
    codegen::Instance& inst = *slots_[slot].inst;
    if (blob.size() != inst.state_size() + stride_)
        throw std::invalid_argument("InstancePool: snapshot blob size mismatch");
    const std::size_t consumed = inst.restore_state(blob);
    std::copy_n(blob.data() + consumed, stride_, arena_.data() + slot * stride_);
}

InstancePool::Rebind InstancePool::prepare_rebind(
    const codegen::CompiledSystem& sys, BlockPtr root,
    std::shared_ptr<const codegen::Executable> executable, const StateMigrator& migrate) const {
    Rebind r;
    r.sys = &sys;
    r.root = std::move(root);
    r.exec = std::move(executable);
    if (r.exec == nullptr) r.exec = codegen::make_executable(*r.sys, r.root);
    r.nin = r.root->num_inputs();
    r.nout = r.root->num_outputs();
    r.stride = r.nin + r.nout;
    r.arena.assign(slots_.size() * r.stride, 0.0);
    r.insts.reserve(live_.size());
    std::vector<double> old_state, new_state;
    for (const std::uint32_t slot : live_) {
        old_state.clear();
        slots_[slot].inst->save_state(old_state);
        std::unique_ptr<codegen::Instance> inst = r.exec->instantiate();
        new_state.clear();
        inst->save_state(new_state); // the new model's init values
        const std::span<double> new_in(r.arena.data() + slot * r.stride, r.nin);
        const std::span<double> new_out(r.arena.data() + slot * r.stride + r.nin, r.nout);
        migrate.migrate(old_state, inputs_of(slot), outputs_of(slot), new_state, new_in,
                        new_out);
        inst->restore_state(new_state);
        r.insts.push_back(std::move(inst));
    }
    return r;
}

void InstancePool::commit_rebind(Rebind&& r) {
    for (std::size_t i = 0; i < live_.size(); ++i) slots_[live_[i]].inst = std::move(r.insts[i]);
    for (Slot& s : slots_)
        if (!s.live) s.inst.reset(); // recycle from the new executable
    sys_ = r.sys;
    root_ = std::move(r.root);
    exec_ = std::move(r.exec);
    nin_ = r.nin;
    nout_ = r.nout;
    stride_ = r.stride;
    arena_ = std::move(r.arena);
}

InstancePool::Image InstancePool::image() const {
    Image img;
    img.free_order = free_;
    img.live_order = live_;
    img.generations.reserve(slots_.size());
    for (const Slot& s : slots_) img.generations.push_back(s.generation);
    img.blobs.reserve(live_.size());
    for (const std::uint32_t slot : live_)
        img.blobs.push_back(snapshot_state({slot, slots_[slot].generation}));
    return img;
}

void InstancePool::restore_image(const Image& img) {
    if (!live_.empty())
        throw std::invalid_argument("InstancePool: restore_image requires an empty pool");
    if (img.generations.size() != slots_.size())
        throw std::invalid_argument("InstancePool: image capacity mismatch");
    if (img.blobs.size() != img.live_order.size())
        throw std::invalid_argument("InstancePool: image blob count mismatch");
    if (img.free_order.size() + img.live_order.size() > slots_.size())
        throw std::invalid_argument("InstancePool: image slot lists exceed capacity");
    std::vector<std::uint8_t> seen(slots_.size(), 0);
    for (const std::uint32_t s : img.free_order) {
        if (s >= slots_.size() || seen[s]++)
            throw std::invalid_argument("InstancePool: image free list invalid");
    }
    for (const std::uint32_t s : img.live_order) {
        if (s >= slots_.size() || seen[s]++)
            throw std::invalid_argument("InstancePool: image live list invalid");
    }

    free_ = img.free_order;
    live_ = img.live_order;
    for (std::size_t s = 0; s < slots_.size(); ++s) {
        slots_[s].generation = img.generations[s];
        slots_[s].live = false;
        slots_[s].inst.reset();
    }
    // Slots in neither list were lost to generation exhaustion.
    retired_ = slots_.size() - free_.size() - live_.size();
    std::fill(arena_.begin(), arena_.end(), 0.0);
    for (std::size_t i = 0; i < live_.size(); ++i) {
        const std::uint32_t slot = live_[i];
        Slot& s = slots_[slot];
        s.live = true;
        s.live_pos = static_cast<std::uint32_t>(i);
        s.inst = exec_->instantiate();
        restore_state({slot, s.generation}, img.blobs[i]);
    }
}

void InstancePool::debug_set_generation(std::uint32_t slot, std::uint32_t generation) {
    if (slot >= slots_.size() || slots_[slot].live || slots_[slot].generation == UINT32_MAX)
        throw std::invalid_argument("InstancePool: bad slot for debug_set_generation");
    slots_[slot].generation = generation;
}

} // namespace sbd::runtime
