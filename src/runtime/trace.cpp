#include "runtime/trace.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/exec.hpp"
#include "sim/simulator.hpp"

namespace sbd::runtime {

namespace {

constexpr char kMagic[4] = {'S', 'B', 'D', 'T'};
constexpr std::uint32_t kVersion = 1;

bool rows_bit_equal(const std::vector<std::vector<double>>& a,
                    const std::vector<std::vector<double>>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].size() != b[i].size()) return false;
        if (!a[i].empty() &&
            std::memcmp(a[i].data(), b[i].data(), a[i].size() * sizeof(double)) != 0)
            return false;
    }
    return true;
}

template <typename T> void write_pod(std::ostream& os, const T& v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T> T read_pod(std::istream& is) {
    T v{};
    is.read(reinterpret_cast<char*>(&v), sizeof v);
    if (!is) throw std::runtime_error("trace: truncated binary file");
    return v;
}

void save_binary(const Trace& t, std::ostream& os) {
    os.write(kMagic, sizeof kMagic);
    write_pod(os, kVersion);
    write_pod(os, static_cast<std::uint64_t>(t.num_inputs));
    write_pod(os, static_cast<std::uint64_t>(t.num_outputs));
    write_pod(os, static_cast<std::uint64_t>(t.instants()));
    for (std::size_t k = 0; k < t.instants(); ++k) {
        os.write(reinterpret_cast<const char*>(t.inputs[k].data()),
                 static_cast<std::streamsize>(t.num_inputs * sizeof(double)));
        os.write(reinterpret_cast<const char*>(t.outputs[k].data()),
                 static_cast<std::streamsize>(t.num_outputs * sizeof(double)));
    }
}

Trace load_binary(std::istream& is) {
    char magic[4];
    is.read(magic, sizeof magic);
    if (!is || std::memcmp(magic, kMagic, sizeof kMagic) != 0)
        throw std::runtime_error("trace: not an SBDT binary trace");
    const auto version = read_pod<std::uint32_t>(is);
    if (version != kVersion)
        throw std::runtime_error("trace: unsupported version " + std::to_string(version));
    Trace t;
    t.num_inputs = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
    t.num_outputs = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
    const auto n = static_cast<std::size_t>(read_pod<std::uint64_t>(is));
    t.inputs.assign(n, std::vector<double>(t.num_inputs));
    t.outputs.assign(n, std::vector<double>(t.num_outputs));
    for (std::size_t k = 0; k < n; ++k) {
        is.read(reinterpret_cast<char*>(t.inputs[k].data()),
                static_cast<std::streamsize>(t.num_inputs * sizeof(double)));
        is.read(reinterpret_cast<char*>(t.outputs[k].data()),
                static_cast<std::streamsize>(t.num_outputs * sizeof(double)));
        if (!is) throw std::runtime_error("trace: truncated binary file");
    }
    return t;
}

void save_csv(const Trace& t, std::ostream& os) {
    os << "t";
    for (std::size_t i = 0; i < t.num_inputs; ++i) os << ",in" << i;
    for (std::size_t o = 0; o < t.num_outputs; ++o) os << ",out" << o;
    os << "\n";
    char buf[40];
    for (std::size_t k = 0; k < t.instants(); ++k) {
        os << k;
        for (const double v : t.inputs[k]) {
            std::snprintf(buf, sizeof buf, ",%.17g", v);
            os << buf;
        }
        for (const double v : t.outputs[k]) {
            std::snprintf(buf, sizeof buf, ",%.17g", v);
            os << buf;
        }
        os << "\n";
    }
}

Trace load_csv(std::istream& is) {
    std::string line;
    if (!std::getline(is, line)) throw std::runtime_error("trace: empty CSV file");
    // Count the in*/out* columns of the header.
    Trace t;
    {
        std::stringstream header(line);
        std::string col;
        bool first = true;
        while (std::getline(header, col, ',')) {
            if (first) {
                if (col != "t") throw std::runtime_error("trace: malformed CSV header");
                first = false;
            } else if (col.rfind("in", 0) == 0) {
                ++t.num_inputs;
            } else if (col.rfind("out", 0) == 0) {
                ++t.num_outputs;
            } else {
                throw std::runtime_error("trace: unknown CSV column '" + col + "'");
            }
        }
    }
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        std::stringstream row(line);
        std::string cell;
        std::getline(row, cell, ','); // the instant index; implicit by position
        std::vector<double> in(t.num_inputs), out(t.num_outputs);
        for (double& v : in) {
            if (!std::getline(row, cell, ','))
                throw std::runtime_error("trace: short CSV row");
            v = std::strtod(cell.c_str(), nullptr);
        }
        for (double& v : out) {
            if (!std::getline(row, cell, ','))
                throw std::runtime_error("trace: short CSV row");
            v = std::strtod(cell.c_str(), nullptr);
        }
        t.inputs.push_back(std::move(in));
        t.outputs.push_back(std::move(out));
    }
    return t;
}

bool has_suffix(const std::string& s, const std::string& suffix) {
    return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

} // namespace

bool bit_equal(const Trace& a, const Trace& b) {
    return a.num_inputs == b.num_inputs && a.num_outputs == b.num_outputs &&
           rows_bit_equal(a.inputs, b.inputs) && rows_bit_equal(a.outputs, b.outputs);
}

TraceRecorder::TraceRecorder(std::size_t num_inputs, std::size_t num_outputs) {
    trace_.num_inputs = num_inputs;
    trace_.num_outputs = num_outputs;
}

void TraceRecorder::record(std::span<const double> inputs, std::span<const double> outputs) {
    if (inputs.size() != trace_.num_inputs || outputs.size() != trace_.num_outputs)
        throw std::invalid_argument("TraceRecorder: row width mismatch");
    trace_.inputs.emplace_back(inputs.begin(), inputs.end());
    trace_.outputs.emplace_back(outputs.begin(), outputs.end());
}

void save_trace(const Trace& t, const std::string& path) {
    std::ofstream f(path, std::ios::binary);
    if (!f) throw std::runtime_error("trace: cannot write '" + path + "'");
    if (has_suffix(path, ".csv"))
        save_csv(t, f);
    else
        save_binary(t, f);
    if (!f) throw std::runtime_error("trace: write failed for '" + path + "'");
}

Trace load_trace(const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    if (!f) throw std::runtime_error("trace: cannot read '" + path + "'");
    char magic[4] = {};
    f.read(magic, sizeof magic);
    f.clear();
    f.seekg(0);
    if (std::memcmp(magic, kMagic, sizeof kMagic) == 0) return load_binary(f);
    return load_csv(f);
}

Trace replay(const codegen::CompiledSystem& sys, BlockPtr root, const Trace& t,
             const std::shared_ptr<const codegen::Executable>& executable) {
    const std::unique_ptr<codegen::Instance> owned =
        executable != nullptr
            ? executable->instantiate()
            : std::unique_ptr<codegen::Instance>(new codegen::InterpInstance(sys, root));
    codegen::Instance& inst = *owned;
    Trace out;
    out.num_inputs = t.num_inputs;
    out.num_outputs = t.num_outputs;
    out.inputs = t.inputs;
    out.outputs.reserve(t.instants());
    std::vector<double> buf(t.num_outputs);
    for (std::size_t k = 0; k < t.instants(); ++k) {
        inst.step_instant_into(t.inputs[k], buf);
        out.outputs.push_back(buf);
    }
    return out;
}

Trace simulate_reference(const MacroBlock& root, const Trace& t) {
    Trace out;
    out.num_inputs = t.num_inputs;
    out.num_outputs = t.num_outputs;
    out.inputs = t.inputs;
    out.outputs = sim::simulate(root, t.inputs);
    return out;
}

} // namespace sbd::runtime
