#include "sim/simulator.hpp"

#include <cassert>

#include "sbd/flatten.hpp"

namespace sbd::sim {

Simulator::Simulator(std::shared_ptr<const MacroBlock> flat) : diagram_(std::move(flat)) {
    diagram_->validate();
    const std::size_t n = diagram_->num_subs();
    states_.resize(n);
    out_values_.resize(n);
    input_srcs_.resize(n);
    for (std::size_t s = 0; s < n; ++s) {
        const Block& b = *diagram_->sub(s).type;
        if (!b.is_atomic())
            throw ModelError("Simulator requires a flat diagram; sub-block '" +
                             diagram_->sub(s).name + "' is a macro block");
        if (b.is_opaque())
            throw ModelError("cannot simulate interface-only (opaque) sub-block '" +
                             diagram_->sub(s).name + "'");
        out_values_[s].resize(b.num_outputs(), 0.0);
        input_srcs_[s].resize(b.num_inputs());
        for (std::size_t i = 0; i < b.num_inputs(); ++i) {
            const Connection* c = diagram_->writer_of(
                Endpoint{Endpoint::Kind::SubInput, static_cast<std::int32_t>(s),
                         static_cast<std::int32_t>(i)});
            assert(c != nullptr);
            input_srcs_[s][i] = c->src;
        }
    }
    output_srcs_.resize(diagram_->num_outputs());
    for (std::size_t o = 0; o < diagram_->num_outputs(); ++o) {
        const Connection* c = diagram_->writer_of(
            Endpoint{Endpoint::Kind::MacroOutput, -1, static_cast<std::int32_t>(o)});
        assert(c != nullptr);
        output_srcs_[o] = c->src;
    }

    // One pass per instant, in topological order of the block-based
    // dependency graph (data edges into non-Moore blocks, trigger edges
    // into every triggered block). Untriggered Moore blocks have no
    // in-edges and fire early; everything else fires once its same-instant
    // reads are available.
    const graph::Digraph dep = block_dependency_graph(*diagram_);
    const auto order = dep.topological_order();
    if (!order)
        throw ModelError("diagram '" + diagram_->type_name() +
                         "' has a cyclic block-based dependency graph");
    phase1_order_.assign(order->begin(), order->end());
    fired_.resize(n, true);
    reset();
}

void Simulator::reset() {
    for (std::size_t s = 0; s < diagram_->num_subs(); ++s) {
        const auto& atomic = static_cast<const AtomicBlock&>(*diagram_->sub(s).type);
        states_[s] = atomic.initial_state();
        // Held outputs of triggered blocks start at 0 until the first fire.
        std::fill(out_values_[s].begin(), out_values_[s].end(), 0.0);
    }
    instant_ = 0;
}

double Simulator::read(const Endpoint& src) const {
    if (src.kind == Endpoint::Kind::MacroInput) return current_inputs_.at(src.port);
    assert(src.kind == Endpoint::Kind::SubOutput);
    return out_values_[src.sub][src.port];
}

std::vector<double> Simulator::step(std::span<const double> inputs) {
    if (inputs.size() != diagram_->num_inputs())
        throw ModelError("Simulator::step: wrong number of inputs");
    current_inputs_.assign(inputs.begin(), inputs.end());

    // Phase 1: outputs, in dependency order. Untriggered blocks always
    // fire; a triggered block fires iff its trigger is high, otherwise its
    // outputs hold and its state will not advance.
    std::vector<double> in_buf;
    for (const std::size_t s : phase1_order_) {
        const auto& b = static_cast<const AtomicBlock&>(*diagram_->sub(s).type);
        const auto& trig = diagram_->sub(s).trigger;
        fired_[s] = !trig || read(*trig) >= 0.5;
        if (!fired_[s]) continue; // outputs hold their previous values
        if (b.block_class() == BlockClass::MooreSequential) {
            b.compute_outputs(states_[s], {}, out_values_[s]);
        } else {
            in_buf.resize(b.num_inputs());
            for (std::size_t i = 0; i < b.num_inputs(); ++i) in_buf[i] = read(input_srcs_[s][i]);
            b.compute_outputs(states_[s], in_buf, out_values_[s]);
        }
    }
    // Phase 2: state updates of the blocks that fired, with every signal of
    // the instant available.
    for (std::size_t s = 0; s < diagram_->num_subs(); ++s) {
        const auto& b = static_cast<const AtomicBlock&>(*diagram_->sub(s).type);
        if (b.block_class() == BlockClass::Combinational || !fired_[s]) continue;
        in_buf.resize(b.num_inputs());
        for (std::size_t i = 0; i < b.num_inputs(); ++i) in_buf[i] = read(input_srcs_[s][i]);
        b.update_state(states_[s], in_buf);
    }

    std::vector<double> outs(diagram_->num_outputs());
    for (std::size_t o = 0; o < outs.size(); ++o) outs[o] = read(output_srcs_[o]);
    ++instant_;
    return outs;
}

std::vector<std::vector<double>> simulate(const MacroBlock& root,
                                          const std::vector<std::vector<double>>& input_trace) {
    Simulator sim(flatten(root));
    std::vector<std::vector<double>> out;
    out.reserve(input_trace.size());
    for (const auto& in : input_trace) out.push_back(sim.step(in));
    return out;
}

} // namespace sbd::sim
