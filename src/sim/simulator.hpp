#ifndef SBD_SIM_SIMULATOR_HPP
#define SBD_SIM_SIMULATOR_HPP

#include <memory>
#include <span>
#include <vector>

#include "sbd/block.hpp"

namespace sbd::sim {

/// Reference interpreter of the standard synchronous semantics (Section 3,
/// plus the triggered-diagram extension) on a *flat, acyclic* diagram. This
/// is the oracle against which all modularly generated code is checked:
/// each step() executes one synchronous instant as a topological sweep of
/// the block-based dependency graph (untriggered Moore blocks first by
/// construction), followed by the state updates of every block that fired.
/// Triggered blocks whose trigger is low hold their outputs and skip their
/// update.
class Simulator {
public:
    /// Throws ModelError if the diagram is not flat or its block-based
    /// dependency graph is cyclic.
    explicit Simulator(std::shared_ptr<const MacroBlock> flat);

    /// Executes one synchronous instant and returns the output values.
    std::vector<double> step(std::span<const double> inputs);

    /// Resets all block states to their initial values.
    void reset();

    std::size_t instant() const { return instant_; }

private:
    double read(const Endpoint& src) const;

    std::shared_ptr<const MacroBlock> diagram_;
    std::vector<std::size_t> phase1_order_; ///< all blocks, dependency order
    std::vector<bool> fired_;               ///< per sub, this instant
    std::vector<std::vector<double>> states_;
    std::vector<std::vector<double>> out_values_;    ///< per sub, per output port
    std::vector<std::vector<Endpoint>> input_srcs_;  ///< per sub, per input port
    std::vector<Endpoint> output_srcs_;              ///< per macro output
    std::vector<double> current_inputs_;
    std::size_t instant_ = 0;
};

/// Runs a hierarchical diagram for `trace.size()` instants by flattening
/// it first; returns one output vector per instant.
std::vector<std::vector<double>> simulate(const MacroBlock& root,
                                          const std::vector<std::vector<double>>& input_trace);

} // namespace sbd::sim

#endif
