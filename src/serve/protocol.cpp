#include "serve/protocol.hpp"

#include <bit>

namespace sbd::serve {

static_assert(std::endian::native == std::endian::little,
              "the SBDS wire format is little-endian; big-endian hosts need byte swaps");

const char* to_string(Op op) {
    switch (op) {
    case Op::CreateInstances: return "CREATE_INSTANCES";
    case Op::DestroyInstances: return "DESTROY_INSTANCES";
    case Op::PostInputs: return "POST_INPUTS";
    case Op::Tick: return "TICK";
    case Op::ReadOutputs: return "READ_OUTPUTS";
    case Op::Snapshot: return "SNAPSHOT";
    case Op::Stats: return "STATS";
    case Op::Shutdown: return "SHUTDOWN";
    case Op::UpgradeModel: return "UPGRADE_MODEL";
    }
    return "UNKNOWN";
}

const char* to_string(Err err) {
    switch (err) {
    case Err::Ok: return "OK";
    case Err::BadFrame: return "BAD_FRAME";
    case Err::BadVersion: return "BAD_VERSION";
    case Err::BadOpcode: return "BAD_OPCODE";
    case Err::BadPayload: return "BAD_PAYLOAD";
    case Err::BadHandle: return "BAD_HANDLE";
    case Err::PoolFull: return "POOL_FULL";
    case Err::TenantBudget: return "TENANT_BUDGET";
    case Err::DeadlineExceeded: return "DEADLINE_EXCEEDED";
    case Err::FaultInjected: return "FAULT_INJECTED";
    case Err::ShuttingDown: return "SHUTTING_DOWN";
    case Err::Internal: return "INTERNAL";
    case Err::UpgradeRejected: return "UPGRADE_REJECTED";
    case Err::DurableFailed: return "DURABLE_FAILED";
    }
    return "UNKNOWN";
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) {
    std::uint64_t h = 14695981039346656037ULL;
    for (const std::uint8_t b : bytes) {
        h ^= b;
        h *= 1099511628211ULL;
    }
    return h;
}

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

template <typename T> T read_le(const std::uint8_t* p) {
    T v;
    std::memcpy(&v, p, sizeof(T));
    return v;
}

} // namespace

std::vector<std::uint8_t> encode_frame(const Frame& f) {
    if (f.payload.size() > kMaxPayload)
        throw std::length_error("encode_frame: payload exceeds kMaxPayload");
    std::vector<std::uint8_t> out;
    out.reserve(kHeaderSize + f.payload.size());
    put_u32(out, kMagic);
    put_u16(out, f.version);
    put_u16(out, static_cast<std::uint16_t>(f.opcode));
    put_u16(out, static_cast<std::uint16_t>(f.status));
    put_u16(out, 0); // reserved
    put_u32(out, static_cast<std::uint32_t>(f.payload.size()));
    put_u64(out, f.request_id);
    put_u64(out, fnv1a64(f.payload));
    out.insert(out.end(), f.payload.begin(), f.payload.end());
    return out;
}

DecodeResult decode_frame(std::span<const std::uint8_t> bytes, Frame& out) {
    if (bytes.size() < 4) return {DecodeStatus::NeedMore, 0};
    if (read_le<std::uint32_t>(bytes.data()) != kMagic) return {DecodeStatus::BadMagic, 0};
    if (bytes.size() < kHeaderSize) return {DecodeStatus::NeedMore, 0};
    const std::uint16_t version = read_le<std::uint16_t>(bytes.data() + 4);
    if (version != kProtocolVersion) return {DecodeStatus::BadVersion, 0};
    const std::uint32_t payload_len = read_le<std::uint32_t>(bytes.data() + 12);
    if (payload_len > kMaxPayload) return {DecodeStatus::Oversized, 0};
    if (bytes.size() < kHeaderSize + payload_len) return {DecodeStatus::NeedMore, 0};
    const std::span<const std::uint8_t> payload = bytes.subspan(kHeaderSize, payload_len);
    if (fnv1a64(payload) != read_le<std::uint64_t>(bytes.data() + 24))
        return {DecodeStatus::BadChecksum, 0};
    out.version = version;
    out.opcode = static_cast<Op>(read_le<std::uint16_t>(bytes.data() + 6));
    out.status = static_cast<Err>(read_le<std::uint16_t>(bytes.data() + 8));
    out.request_id = read_le<std::uint64_t>(bytes.data() + 16);
    out.payload.assign(payload.begin(), payload.end());
    return {DecodeStatus::Ok, kHeaderSize + payload_len};
}

} // namespace sbd::serve
