// One shard of the simulation service: an Engine-hosted instance pool plus
// per-slot tenant ownership. The server owns N shards and spreads instances
// across them; all cross-shard coordination (locking, admission, the global
// tick) lives in Server — a Shard is deliberately lock-free and single-
// writer from its point of view.
#ifndef SBD_SERVE_SHARD_HPP
#define SBD_SERVE_SHARD_HPP

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "runtime/engine.hpp"

namespace sbd::serve {

class Shard {
public:
    Shard(const codegen::CompiledSystem& sys, BlockPtr root, runtime::EngineConfig cfg)
        : engine_(sys, std::move(root), cfg), owner_(cfg.capacity, 0) {}

    runtime::Engine& engine() { return engine_; }
    const runtime::Engine& engine() const { return engine_; }
    runtime::InstancePool& pool() { return engine_.pool(); }
    const runtime::InstancePool& pool() const { return engine_.pool(); }

    /// Creates an instance owned by `tenant`. Caller checks free() first;
    /// throws std::length_error if the pool is actually full.
    runtime::InstanceId create(std::uint64_t tenant) {
        const runtime::InstanceId id = engine_.create();
        owner_[id.slot] = tenant;
        return id;
    }

    void destroy(runtime::InstanceId id) {
        engine_.destroy(id);
        owner_[id.slot] = 0;
    }

    /// True iff `id` is a live handle whose slot `tenant` owns.
    bool owned_by(runtime::InstanceId id, std::uint64_t tenant) const {
        return pool().alive(id) && owner_[id.slot] == tenant;
    }

    std::size_t size() const { return pool().size(); }
    std::size_t capacity() const { return pool().capacity(); }
    /// Slots still available for create(): capacity minus live minus the
    /// slots retired by generation exhaustion.
    std::size_t free() const { return capacity() - size() - pool().retired(); }

    /// Per-slot tenant ownership, exposed for durable checkpoints. The
    /// restore side pairs it with InstancePool::restore_image, which
    /// re-establishes exactly the live set the owners table describes.
    const std::vector<std::uint64_t>& owners() const { return owner_; }
    void restore_owners(std::vector<std::uint64_t> owners) {
        if (owners.size() != owner_.size())
            throw std::invalid_argument("Shard: owner table size mismatch");
        owner_ = std::move(owners);
    }

private:
    runtime::Engine engine_;
    /// By slot; valid while the slot is live. Survives a live-upgrade rebind
    /// untouched: commit_rebind preserves slot numbering, generations and
    /// the live list, so ownership (and every outstanding wire handle)
    /// remains valid across model versions.
    std::vector<std::uint64_t> owner_;
};

} // namespace sbd::serve

#endif
