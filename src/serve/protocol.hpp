// The sbd-serve wire protocol: versioned, length-prefixed, checksummed
// binary frames over a byte stream (TCP or Unix socket).
//
// Every frame is a fixed 32-byte header followed by `payload_len` bytes:
//
//   u32 magic        "SBDS" (0x53444253, little-endian byte order S B D S)
//   u16 version      kProtocolVersion (responses echo the request's)
//   u16 opcode       Op — requests set it, responses echo it
//   u16 status       Err — 0 (Ok) in requests, the outcome in responses
//   u16 reserved     0
//   u32 payload_len  <= kMaxPayload
//   u64 request_id   chosen by the client, echoed verbatim in the response
//   u64 checksum     FNV-1a 64 over the payload bytes
//
// All integers and the raw bit patterns of doubles are little-endian. A
// frame with a bad magic, unsupported version, oversized payload or wrong
// checksum is *rejected with a coded error*, never partially interpreted —
// the same contract the SBDT/SBDO readers follow for files.
#ifndef SBD_SERVE_PROTOCOL_HPP
#define SBD_SERVE_PROTOCOL_HPP

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace sbd::serve {

inline constexpr std::uint32_t kMagic = 0x53444253; // "SBDS"
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::uint32_t kMaxPayload = 64u << 20; ///< 64 MiB
inline constexpr std::size_t kHeaderSize = 32;

/// Request opcodes. Values are wire format — append, never renumber.
enum class Op : std::uint16_t {
    CreateInstances = 1, ///< tenant, count -> handles
    DestroyInstances = 2,///< tenant, handles -> ()
    PostInputs = 3,      ///< tenant, (handle, input row)... -> ()
    Tick = 4,            ///< tenant, n -> server instants executed so far
    ReadOutputs = 5,     ///< tenant, handles -> output rows
    Snapshot = 6,        ///< tenant, handle -> state blob (doubles)
    Stats = 7,           ///< tenant -> Prometheus text exposition
    Shutdown = 8,        ///< tenant -> (); server drains and exits
    UpgradeModel = 9,    ///< tenant, flags, .sbd source -> version, reuse stats
};

/// UPGRADE_MODEL request flag bits.
inline constexpr std::uint32_t kUpgradeAllowDrain = 1u; ///< accept drain-and-replace plans

/// Coded protocol outcomes. Everything a server can refuse is one of these
/// — a client never sees a torn tick or an uncoded failure. CLI tools map
/// any non-Ok status to exit code 8 (kExitProtocol).
enum class Err : std::uint16_t {
    Ok = 0,
    BadFrame = 1,         ///< magic/length/checksum violation
    BadVersion = 2,       ///< unsupported protocol version
    BadOpcode = 3,        ///< unknown Op
    BadPayload = 4,       ///< payload too short / malformed for the Op
    BadHandle = 5,        ///< stale, foreign or out-of-range instance handle
    PoolFull = 6,         ///< shard capacity exhausted
    TenantBudget = 7,     ///< per-tenant instance budget exceeded (shed)
    DeadlineExceeded = 8, ///< tick deadline expired before the instant began
    FaultInjected = 9,    ///< armed fault plan failed the dispatch path
    ShuttingDown = 10,    ///< server is draining; no new work accepted
    Internal = 11,        ///< unexpected server-side exception
    UpgradeRejected = 12, ///< UPGRADE_MODEL refused (bad model, incompatible
                          ///< state, disabled, or lost a concurrent race);
                          ///< the running version is untouched
    DurableFailed = 13,   ///< the write-ahead journal could not make the
                          ///< mutation durable (append or fsync failed);
                          ///< nothing was applied — journal-then-apply means
                          ///< a rejected append leaves state untouched
};

const char* to_string(Op op);
const char* to_string(Err err);

/// Client-side exception carrying the server's coded rejection.
class ServeError : public std::runtime_error {
public:
    ServeError(Err code, const std::string& what) : std::runtime_error(what), code_(code) {}
    Err code() const { return code_; }

private:
    Err code_;
};

/// FNV-1a 64 over a byte range — the frame payload checksum.
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes);

/// One decoded frame (header fields + owned payload bytes).
struct Frame {
    std::uint16_t version = kProtocolVersion;
    Op opcode = Op::CreateInstances;
    Err status = Err::Ok;
    std::uint64_t request_id = 0;
    std::vector<std::uint8_t> payload;
};

/// Serializes header + payload + checksum into one contiguous buffer.
std::vector<std::uint8_t> encode_frame(const Frame& f);

enum class DecodeStatus {
    Ok,          ///< one complete frame decoded; `consumed` bytes eaten
    NeedMore,    ///< the buffer holds a valid prefix of an incomplete frame
    BadMagic,    ///< first four bytes are not "SBDS"
    BadVersion,  ///< version field is not kProtocolVersion
    Oversized,   ///< payload_len exceeds kMaxPayload
    BadChecksum, ///< payload bytes do not match the header checksum
};

struct DecodeResult {
    DecodeStatus status = DecodeStatus::NeedMore;
    std::size_t consumed = 0; ///< bytes eaten on Ok (header + payload)
};

/// Attempts to decode one frame from the front of `bytes`. Never throws;
/// malformed input yields a coded status and consumes nothing.
DecodeResult decode_frame(std::span<const std::uint8_t> bytes, Frame& out);

/// Little-endian payload serializer. Doubles travel as raw bit patterns so
/// values round-trip bit-exactly (the serving differential gate depends on
/// this: -0.0 and NaN payloads survive the wire).
class PayloadWriter {
public:
    void u16(std::uint16_t v) { put(&v, 2); }
    void u32(std::uint32_t v) { put(&v, 4); }
    void u64(std::uint64_t v) { put(&v, 8); }
    void f64(double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, 8);
        u64(bits);
    }
    void f64s(std::span<const double> vs) {
        for (const double v : vs) f64(v);
    }
    void bytes(std::span<const std::uint8_t> vs) {
        buf_.insert(buf_.end(), vs.begin(), vs.end());
    }
    void str(const std::string& s) {
        u32(static_cast<std::uint32_t>(s.size()));
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    std::vector<std::uint8_t> take() { return std::move(buf_); }

private:
    void put(const void* p, std::size_t n) {
        const auto* b = static_cast<const std::uint8_t*>(p);
        buf_.insert(buf_.end(), b, b + n); // little-endian hosts only (asserted in protocol.cpp)
    }
    std::vector<std::uint8_t> buf_;
};

/// Bounds-checked payload reader; any overrun or trailing-garbage check
/// failure throws ServeError(Err::BadPayload) — the server catches it and
/// answers with the coded status instead of crashing.
class PayloadReader {
public:
    explicit PayloadReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

    std::uint16_t u16() { return get<std::uint16_t>(); }
    std::uint32_t u32() { return get<std::uint32_t>(); }
    std::uint64_t u64() { return get<std::uint64_t>(); }
    double f64() {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, 8);
        return v;
    }
    void f64s(std::span<double> out) {
        for (double& v : out) v = f64();
    }
    std::string str() {
        const std::uint32_t n = u32();
        if (bytes_.size() - at_ < n) fail();
        std::string s(reinterpret_cast<const char*>(bytes_.data() + at_), n);
        at_ += n;
        return s;
    }
    std::size_t remaining() const { return bytes_.size() - at_; }
    /// Call when the payload must be fully consumed.
    void done() const {
        if (at_ != bytes_.size()) fail();
    }

private:
    template <typename T> T get() {
        if (bytes_.size() - at_ < sizeof(T)) fail();
        T v;
        std::memcpy(&v, bytes_.data() + at_, sizeof(T));
        at_ += sizeof(T);
        return v;
    }
    [[noreturn]] static void fail() {
        throw ServeError(Err::BadPayload, "malformed request payload");
    }

    std::span<const std::uint8_t> bytes_;
    std::size_t at_ = 0;
};

/// A client-visible instance handle: the owning shard plus the shard-local
/// generational id. 96 bits on the wire (3 x u32); opaque to clients.
struct WireHandle {
    std::uint32_t shard = 0;
    std::uint32_t slot = 0;
    std::uint32_t generation = 0;

    bool operator==(const WireHandle&) const = default;
};

inline void write_handle(PayloadWriter& w, const WireHandle& h) {
    w.u32(h.shard);
    w.u32(h.slot);
    w.u32(h.generation);
}

inline WireHandle read_handle(PayloadReader& r) {
    WireHandle h;
    h.shard = r.u32();
    h.slot = r.u32();
    h.generation = r.u32();
    return h;
}

} // namespace sbd::serve

#endif
