#include "serve/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <stdexcept>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace sbd::serve {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

} // namespace

std::string Endpoint::to_string() const {
    if (is_unix) return "unix:" + path;
    return "tcp:" + host + ":" + std::to_string(port);
}

Endpoint Endpoint::parse(const std::string& spec) {
    Endpoint ep;
    if (spec.rfind("unix:", 0) == 0) {
        ep.is_unix = true;
        ep.path = spec.substr(5);
        if (ep.path.empty())
            throw std::invalid_argument("endpoint: empty unix socket path in '" + spec + "'");
        if (ep.path.size() >= sizeof(sockaddr_un{}.sun_path))
            throw std::invalid_argument("endpoint: unix socket path too long in '" + spec + "'");
        return ep;
    }
    if (spec.rfind("tcp:", 0) == 0) {
        const std::string rest = spec.substr(4);
        const std::size_t colon = rest.rfind(':');
        if (colon == std::string::npos || colon == 0)
            throw std::invalid_argument("endpoint: expected tcp:HOST:PORT, got '" + spec + "'");
        ep.host = rest.substr(0, colon);
        const std::string port_s = rest.substr(colon + 1);
        if (port_s.empty() || port_s.find_first_not_of("0123456789") != std::string::npos ||
            port_s.size() > 5)
            throw std::invalid_argument("endpoint: bad port in '" + spec + "'");
        const unsigned long p = std::stoul(port_s);
        if (p > 65535) throw std::invalid_argument("endpoint: bad port in '" + spec + "'");
        ep.port = static_cast<std::uint16_t>(p);
        return ep;
    }
    throw std::invalid_argument("endpoint: expected tcp:HOST:PORT or unix:PATH, got '" + spec +
                                "'");
}

Fd& Fd::operator=(Fd&& o) noexcept {
    if (this != &o) {
        close();
        fd_ = o.fd_;
        o.fd_ = -1;
    }
    return *this;
}

void Fd::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Conn Conn::connect(const Endpoint& ep) {
    if (ep.is_unix) {
        Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
        if (!fd.valid()) sys_fail("socket");
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
        if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
            sys_fail("connect " + ep.to_string());
        return Conn(std::move(fd));
    }
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) sys_fail("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ep.port);
    if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1)
        throw std::runtime_error("connect: bad IPv4 address '" + ep.host + "'");
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
        sys_fail("connect " + ep.to_string());
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Conn(std::move(fd));
}

void Conn::send_all(std::span<const std::uint8_t> bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd_.get(), bytes.data() + sent, bytes.size() - sent,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            sys_fail("send");
        }
        sent += static_cast<std::size_t>(n);
    }
}

std::size_t Conn::take_pushback(std::span<std::uint8_t> out) {
    const std::size_t n = std::min(out.size(), pushback_.size());
    if (n != 0) {
        std::memcpy(out.data(), pushback_.data(), n);
        pushback_.erase(pushback_.begin(),
                        pushback_.begin() + static_cast<std::ptrdiff_t>(n));
    }
    return n;
}

bool Conn::recv_exact(std::span<std::uint8_t> out) {
    std::size_t got = take_pushback(out);
    while (got < out.size()) {
        const ssize_t n = ::recv(fd_.get(), out.data() + got, out.size() - got, 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            sys_fail("recv");
        }
        if (n == 0) {
            if (got == 0) return false; // clean EOF at a frame boundary
            throw std::runtime_error("recv: connection closed mid-frame");
        }
        got += static_cast<std::size_t>(n);
    }
    return true;
}

std::size_t Conn::recv_some(std::span<std::uint8_t> out) {
    if (const std::size_t n = take_pushback(out); n != 0) return n;
    for (;;) {
        const ssize_t n = ::recv(fd_.get(), out.data(), out.size(), 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            sys_fail("recv");
        }
        return static_cast<std::size_t>(n);
    }
}

std::optional<Frame> Conn::recv_frame() {
    std::vector<std::uint8_t> buf(kHeaderSize);
    if (!recv_exact(buf)) return std::nullopt;
    // Decode the header via decode_frame on the header-only prefix: any
    // status other than NeedMore/Ok is a framing violation.
    Frame f;
    DecodeResult r = decode_frame(buf, f);
    if (r.status == DecodeStatus::BadMagic)
        throw ServeError(Err::BadFrame, "bad frame magic");
    if (r.status == DecodeStatus::BadVersion)
        throw ServeError(Err::BadVersion, "unsupported protocol version");
    if (r.status == DecodeStatus::Oversized)
        throw ServeError(Err::BadFrame, "oversized frame payload");
    std::uint32_t payload_len;
    std::memcpy(&payload_len, buf.data() + 12, 4);
    buf.resize(kHeaderSize + payload_len);
    if (payload_len != 0 && !recv_exact(std::span(buf).subspan(kHeaderSize)))
        throw std::runtime_error("recv: connection closed mid-frame");
    r = decode_frame(buf, f);
    if (r.status == DecodeStatus::BadChecksum)
        throw ServeError(Err::BadFrame, "frame checksum mismatch");
    if (r.status != DecodeStatus::Ok) throw ServeError(Err::BadFrame, "malformed frame");
    return f;
}

void Conn::shutdown_both() {
    if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

namespace {

/// True iff a process is accepting connections on the unix socket at
/// `path`. A socket file with no listener behind it (the server died
/// without unlinking) refuses the probe; a missing file fails the
/// connect with ENOENT. Both mean "stale".
bool unix_socket_alive(const std::string& path) {
    Fd probe(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!probe.valid()) return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    return ::connect(probe.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
}

} // namespace

Listener::Listener(const Endpoint& ep) {
    if (ep.is_unix) {
        fd_ = Fd(::socket(AF_UNIX, SOCK_STREAM, 0));
        if (!fd_.valid()) sys_fail("socket");
        // Bind-over semantics: a leftover socket file from a crashed server
        // must not block restarts, but silently unlinking a *live* server's
        // socket would hijack its clients mid-session. Probe first: only a
        // socket nobody answers is stale enough to remove.
        if (::access(ep.path.c_str(), F_OK) == 0) {
            if (unix_socket_alive(ep.path))
                throw std::runtime_error("bind " + ep.to_string() +
                                         ": address in use (a live server is accepting "
                                         "connections on this socket)");
            ::unlink(ep.path.c_str());
        }
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, ep.path.c_str(), sizeof(addr.sun_path) - 1);
        if (::bind(fd_.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
            sys_fail("bind " + ep.to_string());
        if (::listen(fd_.get(), 64) != 0) sys_fail("listen " + ep.to_string());
        bound_ = ep;
        return;
    }
    fd_ = Fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd_.valid()) sys_fail("socket");
    const int one = 1;
    ::setsockopt(fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ep.port);
    if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1)
        throw std::runtime_error("bind: bad IPv4 address '" + ep.host + "'");
    if (::bind(fd_.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
        sys_fail("bind " + ep.to_string());
    if (::listen(fd_.get(), 64) != 0) sys_fail("listen " + ep.to_string());
    bound_ = ep;
    sockaddr_in got{};
    socklen_t len = sizeof(got);
    if (::getsockname(fd_.get(), reinterpret_cast<sockaddr*>(&got), &len) == 0)
        bound_.port = ntohs(got.sin_port); // resolve an ephemeral port 0
}

Listener::~Listener() {
    if (fd_.valid() && bound_.is_unix) ::unlink(bound_.path.c_str());
}

Conn Listener::accept() {
    const int fd = ::accept(fd_.get(), nullptr, nullptr);
    if (fd < 0) return Conn();
    if (!bound_.is_unix) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    return Conn(Fd(fd));
}

void Listener::shutdown() {
    if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

} // namespace sbd::serve
