// Typed client for the SBDS protocol: one blocking connection, one method
// per opcode. Coded server rejections surface as ServeError (the CLI tools
// map them to exit code 8); transport failures surface as runtime_error.
#ifndef SBD_SERVE_CLIENT_HPP
#define SBD_SERVE_CLIENT_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/socket.hpp"

namespace sbd::serve {

struct TickResult {
    std::uint64_t server_ticks = 0; ///< global instants executed since boot
    std::uint32_t executed = 0;     ///< instants this request ran
};

/// Result of an applied UPGRADE_MODEL (rejections throw ServeError with
/// Err::UpgradeRejected and the server's coded reason instead).
struct UpgradeResult {
    std::uint64_t version = 0;        ///< the now-live model version
    std::uint64_t macro_compiles = 0; ///< units recompiled for this version
    std::uint64_t macro_reuses = 0;   ///< units served from the shared cache
    std::uint64_t units_total = 0;    ///< distinct macro units in the new model
    std::uint64_t units_reused = 0;   ///< of those, structurally unchanged
    bool drained = false;             ///< plan was drain-and-replace
    std::uint64_t state_copied = 0;   ///< doubles carried across the swap
    std::uint64_t state_initialized = 0;
    std::uint64_t state_dropped = 0;
    std::uint64_t compile_ns = 0; ///< unlocked recompile time
    std::uint64_t swap_ns = 0;    ///< exclusive swap pause (prepare + commit)

    double reuse_ratio() const {
        return units_total == 0 ? 0.0
                                : static_cast<double>(units_reused) /
                                      static_cast<double>(units_total);
    }
};

class Client {
public:
    explicit Client(Conn conn) : conn_(std::move(conn)) {}

    /// Connects to a server endpoint; throws std::runtime_error on failure.
    static Client connect(const Endpoint& ep) { return Client(Conn::connect(ep)); }

    std::vector<WireHandle> create_instances(std::uint64_t tenant, std::uint32_t count);
    void destroy_instances(std::uint64_t tenant, std::span<const WireHandle> handles);
    /// `rows` is handles.size() * num_inputs doubles, instance-major.
    void post_inputs(std::uint64_t tenant, std::span<const WireHandle> handles,
                     std::span<const double> rows);
    TickResult tick(std::uint64_t tenant, std::uint32_t n);
    /// Returns handles.size() * num_outputs doubles, instance-major.
    std::vector<double> read_outputs(std::uint64_t tenant,
                                     std::span<const WireHandle> handles);
    std::vector<double> snapshot(std::uint64_t tenant, const WireHandle& handle);
    std::string stats(std::uint64_t tenant);
    void shutdown(std::uint64_t tenant);
    /// Hot-swaps the server's model to the given .sbd source. `allow_drain`
    /// opts into drain-and-replace plans (all state reset) when the new
    /// root's port interface changed. Throws ServeError(UpgradeRejected)
    /// with the server's coded reason when the upgrade is refused; the
    /// running version is untouched in that case.
    UpgradeResult upgrade_model(std::uint64_t tenant, const std::string& source,
                                bool allow_drain = false);

    /// Raw round-trip (tests use this for hand-built payloads): sends one
    /// request, returns the matching response frame without status mapping.
    Frame call_raw(Op op, std::vector<std::uint8_t> payload);

private:
    /// call_raw + status check: non-Ok throws ServeError with the server's
    /// message; the returned frame is always Ok.
    Frame call(Op op, std::vector<std::uint8_t> payload);

    Conn conn_;
    std::uint64_t next_request_id_ = 1;
};

} // namespace sbd::serve

#endif
