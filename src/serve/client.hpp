// Typed client for the SBDS protocol: one blocking connection, one method
// per opcode. Coded server rejections surface as ServeError (the CLI tools
// map them to exit code 8); transport failures surface as runtime_error.
#ifndef SBD_SERVE_CLIENT_HPP
#define SBD_SERVE_CLIENT_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/socket.hpp"

namespace sbd::serve {

struct TickResult {
    std::uint64_t server_ticks = 0; ///< global instants executed since boot
    std::uint32_t executed = 0;     ///< instants this request ran
};

class Client {
public:
    explicit Client(Conn conn) : conn_(std::move(conn)) {}

    /// Connects to a server endpoint; throws std::runtime_error on failure.
    static Client connect(const Endpoint& ep) { return Client(Conn::connect(ep)); }

    std::vector<WireHandle> create_instances(std::uint64_t tenant, std::uint32_t count);
    void destroy_instances(std::uint64_t tenant, std::span<const WireHandle> handles);
    /// `rows` is handles.size() * num_inputs doubles, instance-major.
    void post_inputs(std::uint64_t tenant, std::span<const WireHandle> handles,
                     std::span<const double> rows);
    TickResult tick(std::uint64_t tenant, std::uint32_t n);
    /// Returns handles.size() * num_outputs doubles, instance-major.
    std::vector<double> read_outputs(std::uint64_t tenant,
                                     std::span<const WireHandle> handles);
    std::vector<double> snapshot(std::uint64_t tenant, const WireHandle& handle);
    std::string stats(std::uint64_t tenant);
    void shutdown(std::uint64_t tenant);

    /// Raw round-trip (tests use this for hand-built payloads): sends one
    /// request, returns the matching response frame without status mapping.
    Frame call_raw(Op op, std::vector<std::uint8_t> payload);

private:
    /// call_raw + status check: non-Ok throws ServeError with the server's
    /// message; the returned frame is always Ok.
    Frame call(Op op, std::vector<std::uint8_t> payload);

    Conn conn_;
    std::uint64_t next_request_id_ = 1;
};

} // namespace sbd::serve

#endif
