// Minimal RAII socket layer for the serve subsystem: endpoint parsing
// ("tcp:HOST:PORT" | "unix:PATH"), a listener, and a blocking connection
// that sends/receives whole protocol frames. POSIX only (the repository
// targets Linux); nothing here is exposed outside src/serve and the tools.
#ifndef SBD_SERVE_SOCKET_HPP
#define SBD_SERVE_SOCKET_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace sbd::serve {

/// A parsed listen/connect endpoint. tcp: empty `path`; unix: empty
/// host/port.
struct Endpoint {
    bool is_unix = false;
    std::string host;   ///< tcp only
    std::uint16_t port = 0; ///< tcp only (0 = ephemeral, server picks)
    std::string path;   ///< unix only

    std::string to_string() const;

    /// Parses "tcp:HOST:PORT" or "unix:PATH"; throws std::invalid_argument
    /// naming the problem on anything else.
    static Endpoint parse(const std::string& spec);
};

/// Owned file descriptor (move-only).
class Fd {
public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { close(); }
    Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
    Fd& operator=(Fd&& o) noexcept;
    Fd(const Fd&) = delete;
    Fd& operator=(const Fd&) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    void close();

private:
    int fd_ = -1;
};

/// A connected byte stream speaking SBDS frames (plus the raw escape
/// hatches the HTTP fallback and the malformed-frame tests use).
class Conn {
public:
    Conn() = default;
    explicit Conn(Fd fd) : fd_(std::move(fd)) {}

    bool valid() const { return fd_.valid(); }
    int native() const { return fd_.get(); }

    /// Connects to an endpoint; throws std::runtime_error on failure.
    static Conn connect(const Endpoint& ep);

    /// Sends all of `bytes`; throws std::runtime_error on a broken stream.
    void send_all(std::span<const std::uint8_t> bytes);
    /// Reads exactly n bytes; returns false on clean EOF at a frame
    /// boundary (0 bytes read), throws on mid-read EOF or errors.
    bool recv_exact(std::span<std::uint8_t> out);

    /// Sends one encoded frame.
    void send_frame(const Frame& f) { send_all(encode_frame(f)); }
    /// Receives one frame; nullopt on clean EOF before a header. Throws
    /// ServeError(Err::BadFrame/BadVersion) on malformed input — receivers
    /// cannot continue a stream whose framing is broken.
    std::optional<Frame> recv_frame();

    /// Reads whatever is available, up to `max` bytes (for the HTTP
    /// request-line peek). Returns bytes read (0 = EOF).
    std::size_t recv_some(std::span<std::uint8_t> out);

    /// Pushes bytes back onto the stream: the next recv_* consumes them
    /// before touching the socket. Used by the server to sniff whether a
    /// fresh connection speaks SBDS frames or an HTTP GET /metrics.
    void unread(std::span<const std::uint8_t> bytes) {
        pushback_.insert(pushback_.end(), bytes.begin(), bytes.end());
    }

    void shutdown_both(); ///< interrupts blocked reads from another thread

private:
    std::size_t take_pushback(std::span<std::uint8_t> out);

    Fd fd_;
    std::vector<std::uint8_t> pushback_;
};

/// A listening socket bound to an endpoint.
class Listener {
public:
    Listener() = default;
    /// Binds and listens; throws std::runtime_error on failure. For tcp
    /// with port 0 the kernel assigns a port — see bound_endpoint(). A unix
    /// path with a socket file nobody answers (a crashed server's leftover)
    /// is unlinked and bound over; one with a *live* listener behind it
    /// throws "address in use" rather than hijacking it.
    explicit Listener(const Endpoint& ep);
    ~Listener();
    Listener(Listener&&) = default;
    Listener& operator=(Listener&&) = default;

    /// Accepts one connection; an invalid Conn means the listener was shut
    /// down (or accept failed transiently).
    Conn accept();
    /// Unblocks a pending accept() from another thread.
    void shutdown();

    const Endpoint& bound_endpoint() const { return bound_; }
    bool valid() const { return fd_.valid(); }

private:
    Fd fd_;
    Endpoint bound_;
};

} // namespace sbd::serve

#endif
