#include "serve/client.hpp"

#include <stdexcept>

namespace sbd::serve {

Frame Client::call_raw(Op op, std::vector<std::uint8_t> payload) {
    Frame req;
    req.opcode = op;
    req.request_id = next_request_id_++;
    req.payload = std::move(payload);
    conn_.send_frame(req);
    std::optional<Frame> resp = conn_.recv_frame();
    if (!resp) throw std::runtime_error("serve: server closed the connection");
    if (resp->request_id != req.request_id)
        throw std::runtime_error("serve: response id does not match the request");
    return std::move(*resp);
}

Frame Client::call(Op op, std::vector<std::uint8_t> payload) {
    Frame resp = call_raw(op, std::move(payload));
    if (resp.status != Err::Ok) {
        std::string message = "(no message)";
        try {
            PayloadReader r(resp.payload);
            message = r.str();
        } catch (const ServeError&) {
        }
        throw ServeError(resp.status,
                         std::string(to_string(resp.status)) + ": " + message);
    }
    return resp;
}

std::vector<WireHandle> Client::create_instances(std::uint64_t tenant, std::uint32_t count) {
    PayloadWriter w;
    w.u64(tenant);
    w.u32(count);
    const Frame resp = call(Op::CreateInstances, w.take());
    PayloadReader r(resp.payload);
    const std::uint32_t n = r.u32();
    std::vector<WireHandle> handles(n);
    for (WireHandle& h : handles) h = read_handle(r);
    r.done();
    return handles;
}

void Client::destroy_instances(std::uint64_t tenant, std::span<const WireHandle> handles) {
    PayloadWriter w;
    w.u64(tenant);
    w.u32(static_cast<std::uint32_t>(handles.size()));
    for (const WireHandle& h : handles) write_handle(w, h);
    call(Op::DestroyInstances, w.take());
}

void Client::post_inputs(std::uint64_t tenant, std::span<const WireHandle> handles,
                         std::span<const double> rows) {
    if (handles.empty() && rows.empty()) {
        PayloadWriter w;
        w.u64(tenant);
        w.u32(0);
        call(Op::PostInputs, w.take());
        return;
    }
    if (handles.empty() || rows.size() % handles.size() != 0)
        throw std::invalid_argument("post_inputs: rows must be handles * num_inputs doubles");
    const std::size_t nin = rows.size() / handles.size();
    PayloadWriter w;
    w.u64(tenant);
    w.u32(static_cast<std::uint32_t>(handles.size()));
    for (std::size_t i = 0; i < handles.size(); ++i) {
        write_handle(w, handles[i]);
        w.f64s(rows.subspan(i * nin, nin));
    }
    call(Op::PostInputs, w.take());
}

TickResult Client::tick(std::uint64_t tenant, std::uint32_t n) {
    PayloadWriter w;
    w.u64(tenant);
    w.u32(n);
    const Frame resp = call(Op::Tick, w.take());
    PayloadReader r(resp.payload);
    TickResult t;
    t.server_ticks = r.u64();
    t.executed = r.u32();
    r.done();
    return t;
}

std::vector<double> Client::read_outputs(std::uint64_t tenant,
                                         std::span<const WireHandle> handles) {
    PayloadWriter w;
    w.u64(tenant);
    w.u32(static_cast<std::uint32_t>(handles.size()));
    for (const WireHandle& h : handles) write_handle(w, h);
    const Frame resp = call(Op::ReadOutputs, w.take());
    PayloadReader r(resp.payload);
    const std::uint32_t count = r.u32();
    if (r.remaining() % 8 != 0 || (count != 0 && (r.remaining() / 8) % count != 0))
        throw ServeError(Err::BadPayload, "malformed READ_OUTPUTS response");
    std::vector<double> rows(r.remaining() / 8);
    r.f64s(rows);
    r.done();
    return rows;
}

std::vector<double> Client::snapshot(std::uint64_t tenant, const WireHandle& handle) {
    PayloadWriter w;
    w.u64(tenant);
    write_handle(w, handle);
    const Frame resp = call(Op::Snapshot, w.take());
    PayloadReader r(resp.payload);
    std::vector<double> blob(r.u32());
    r.f64s(blob);
    r.done();
    return blob;
}

std::string Client::stats(std::uint64_t tenant) {
    PayloadWriter w;
    w.u64(tenant);
    const Frame resp = call(Op::Stats, w.take());
    PayloadReader r(resp.payload);
    std::string text = r.str();
    r.done();
    return text;
}

void Client::shutdown(std::uint64_t tenant) {
    PayloadWriter w;
    w.u64(tenant);
    call(Op::Shutdown, w.take());
}

UpgradeResult Client::upgrade_model(std::uint64_t tenant, const std::string& source,
                                    bool allow_drain) {
    PayloadWriter w;
    w.u64(tenant);
    w.u32(allow_drain ? kUpgradeAllowDrain : 0);
    w.str(source);
    const Frame resp = call(Op::UpgradeModel, w.take());
    PayloadReader r(resp.payload);
    UpgradeResult u;
    u.version = r.u64();
    u.macro_compiles = r.u64();
    u.macro_reuses = r.u64();
    u.units_total = r.u64();
    u.units_reused = r.u64();
    u.drained = r.u32() != 0;
    u.state_copied = r.u64();
    u.state_initialized = r.u64();
    u.state_dropped = r.u64();
    u.compile_ns = r.u64();
    u.swap_ns = r.u64();
    r.done();
    return u;
}

} // namespace sbd::serve
