#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "obs/export.hpp"
#include "resilience/budget.hpp"
#include "resilience/fault.hpp"

namespace sbd::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_since(Clock::time_point t0) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0).count());
}

/// Lock acquisition that surfaces contention as a queue-depth gauge: the
/// gauge counts requests currently waiting for the state lock.
template <typename LockT> class QueuedLock {
public:
    QueuedLock(std::shared_mutex& m, obs::Gauge& depth) : lk_(m, std::defer_lock) {
        depth.add(1);
        lk_.lock();
        depth.add(-1);
    }

private:
    LockT lk_;
};

using QueuedExclusive = QueuedLock<std::unique_lock<std::shared_mutex>>;
using QueuedShared = QueuedLock<std::shared_lock<std::shared_mutex>>;

} // namespace

Server::Server(const codegen::CompiledSystem& sys, BlockPtr root, ServerConfig cfg)
    : sys_(&sys), root_(std::move(root)), cfg_(std::move(cfg)), listener_(cfg_.endpoint) {
    if (cfg_.shards == 0) throw std::invalid_argument("serve: shards must be > 0");
    if (cfg_.shard_capacity == 0)
        throw std::invalid_argument("serve: shard capacity must be > 0");
    if (cfg_.metrics == nullptr) {
        owned_metrics_ = std::make_shared<obs::MetricsRegistry>();
        metrics_ = owned_metrics_.get();
    } else {
        metrics_ = cfg_.metrics;
    }
    shards_.reserve(cfg_.shards);
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
        runtime::EngineConfig ec;
        ec.capacity = cfg_.shard_capacity;
        ec.threads = cfg_.engine_threads;
        ec.executable = cfg_.executable;
        shards_.push_back(std::make_unique<Shard>(*sys_, root_, ec));
    }
    model_source_ = cfg_.model_source;
    if (cfg_.durable) {
        durable::Options d = *cfg_.durable;
        if (d.metrics == nullptr) d.metrics = metrics_;
        // Throws DurableError when the data dir itself is unusable; torn or
        // corrupt *contents* are repaired/skipped, never fatal.
        store_ = std::make_unique<durable::Store>(std::move(d));
    }
    for (std::uint16_t opv = 1; opv <= 9; ++opv)
        c_requests_[opv] =
            metrics_->counter("sbd_serve_requests_total", "protocol requests received",
                              {{"op", to_string(static_cast<Op>(opv))}});
    c_errors_total_ = metrics_->counter("sbd_serve_errors_total", "coded request rejections");
    c_shed_total_ = metrics_->counter("sbd_serve_shed_total",
                                      "requests shed by per-tenant budget admission");
    c_ticks_total_ = metrics_->counter("sbd_serve_ticks_total",
                                       "global synchronous instants executed");
    c_accept_faults_ = metrics_->counter("sbd_serve_accept_faults_total",
                                         "connections dropped by the accept fault point");
    c_http_scrapes_ = metrics_->counter("sbd_serve_http_scrapes_total",
                                        "HTTP GET /metrics scrapes answered");
    c_connections_total_ =
        metrics_->counter("sbd_serve_connections_total", "connections accepted");
    c_upgrades_applied_ = metrics_->counter("sbd_upgrade_applied_total",
                                            "model upgrades committed into the fleet");
    c_upgrades_rejected_ = metrics_->counter("sbd_upgrade_rejected_total",
                                             "UPGRADE_MODEL requests rejected coded");
    c_upgrade_units_reused_ =
        metrics_->counter("sbd_upgrade_units_reused_total",
                          "macro units served from the shared cache during upgrades");
    c_upgrade_units_compiled_ = metrics_->counter(
        "sbd_upgrade_units_compiled_total", "macro units recompiled during upgrades");
    h_upgrade_swap_ns_ = metrics_->histogram(
        "sbd_upgrade_swap_ns", obs::exponential_bounds(1000, 4.0, 14),
        "exclusive swap pause of an applied upgrade (prepare + commit), nanoseconds");
    g_model_version_ = metrics_->gauge("sbd_upgrade_model_version", "live model version");
    g_model_version_.set(1);
    h_request_ns_ = metrics_->histogram("sbd_serve_request_ns",
                                        obs::exponential_bounds(1000, 4.0, 14),
                                        "request handling latency, nanoseconds");
    h_tick_ns_ = metrics_->histogram("sbd_serve_tick_ns",
                                     obs::exponential_bounds(1000, 4.0, 14),
                                     "whole-instant latency across all shards, nanoseconds");
    g_connections_ = metrics_->gauge("sbd_serve_connections", "open client connections");
    g_queue_depth_ =
        metrics_->gauge("sbd_serve_queue_depth", "requests waiting for the state lock");
    g_shard_instances_.reserve(cfg_.shards);
    g_shard_capacity_.reserve(cfg_.shards);
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
        const obs::Labels labels = {{"shard", std::to_string(s)}};
        g_shard_instances_.push_back(
            metrics_->gauge("sbd_serve_shard_instances", "live instances in the shard", labels));
        g_shard_capacity_.push_back(
            metrics_->gauge("sbd_serve_shard_capacity", "instance slots in the shard", labels));
        g_shard_capacity_.back().set(static_cast<std::int64_t>(cfg_.shard_capacity));
    }
}

Server::~Server() {
    request_stop();
    if (accept_thread_.joinable()) accept_thread_.join();
    std::vector<std::thread> handlers;
    {
        std::lock_guard lk(conns_m_);
        handlers.swap(handlers_);
    }
    for (std::thread& t : handlers) t.join();
    // The store's batch flusher touches journal counters backed by the
    // metrics registry; owned_metrics_ is declared after store_ and would
    // be destroyed first, so stop the store while the registry is alive.
    store_.reset();
}

void Server::start() {
    accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::wait() {
    if (accept_thread_.joinable()) accept_thread_.join();
    std::vector<std::thread> handlers;
    {
        std::lock_guard lk(conns_m_);
        handlers.swap(handlers_);
    }
    for (std::thread& t : handlers) t.join();
}

void Server::request_stop() {
    stopping_.store(true, std::memory_order_relaxed);
    listener_.shutdown();
    std::lock_guard lk(conns_m_);
    for (const std::weak_ptr<Conn>& w : conns_)
        if (const std::shared_ptr<Conn> c = w.lock()) c->shutdown_both();
}

void Server::accept_loop() {
    for (;;) {
        Conn c = listener_.accept();
        if (stopping_.load(std::memory_order_relaxed)) break;
        if (!c.valid()) {
            // Transient accept failure (e.g. fd pressure): back off instead
            // of spinning; listener shutdown is reported via stopping_.
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            continue;
        }
        if (SBD_FAULT_HIT("serve.accept")) {
            // Clean degradation: the connection is dropped before any state
            // is touched; the client observes EOF and may reconnect.
            c_accept_faults_.inc();
            continue;
        }
        auto conn = std::make_shared<Conn>(std::move(c));
        std::lock_guard lk(conns_m_);
        std::erase_if(conns_, [](const std::weak_ptr<Conn>& w) { return w.expired(); });
        conns_.push_back(conn);
        handlers_.emplace_back([this, conn] { handle_conn(conn); });
    }
}

void Server::handle_conn(std::shared_ptr<Conn> conn) {
    g_connections_.add(1);
    c_connections_total_.inc();
    try {
        std::uint8_t head[4];
        if (conn->recv_exact(head)) {
            if (std::memcmp(head, "GET ", 4) == 0) {
                conn->unread(head);
                handle_http(*conn);
            } else {
                conn->unread(head);
                for (;;) {
                    std::optional<Frame> req;
                    try {
                        req = conn->recv_frame();
                    } catch (const ServeError& e) {
                        // Framing violation: the stream cannot be resynced,
                        // so answer with the coded error and drop it.
                        Frame err;
                        err.opcode = static_cast<Op>(0);
                        err.status = e.code();
                        PayloadWriter w;
                        w.str(e.what());
                        err.payload = w.take();
                        conn->send_frame(err);
                        break;
                    }
                    if (!req) break; // clean EOF
                    const Frame resp = handle_request(*req);
                    conn->send_frame(resp);
                    if (req->opcode == Op::Shutdown && resp.status == Err::Ok) {
                        request_stop();
                        break;
                    }
                }
            }
        }
    } catch (const std::exception&) {
        // Broken stream (peer vanished, shutdown during a read): drop.
    }
    g_connections_.add(-1);
}

void Server::handle_http(Conn& conn) {
    // Minimal HTTP/1.0 for scrapes: read the request head (we only care
    // about the path), answer one response, close.
    std::string head;
    std::uint8_t buf[1024];
    while (head.find("\r\n\r\n") == std::string::npos && head.size() < 16384) {
        const std::size_t n = conn.recv_some(buf);
        if (n == 0) break;
        head.append(reinterpret_cast<const char*>(buf), n);
    }
    const std::size_t line_end = head.find('\r');
    const std::string line = head.substr(0, line_end == std::string::npos ? 0 : line_end);
    std::string body;
    std::string status = "200 OK";
    if (line.rfind("GET /metrics", 0) == 0) {
        body = metrics_text();
        c_http_scrapes_.inc();
    } else {
        status = "404 Not Found";
        body = "only GET /metrics is served here\n";
    }
    std::string resp = "HTTP/1.0 " + status +
                       "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                       "Content-Length: " +
                       std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n" + body;
    conn.send_all(std::span(reinterpret_cast<const std::uint8_t*>(resp.data()), resp.size()));
}

std::string Server::metrics_text() {
    {
        QueuedShared lk(state_m_, g_queue_depth_);
        refresh_shard_gauges();
    }
    if (resilience::fault_armed())
        resilience::FaultRegistry::instance().export_metrics(*metrics_);
    return obs::to_prometheus(metrics_->snapshot());
}

void Server::refresh_shard_gauges() {
    for (std::size_t s = 0; s < shards_.size(); ++s)
        g_shard_instances_[s].set(static_cast<std::int64_t>(shards_[s]->size()));
}

ServerStats Server::stats_view() const {
    ServerStats st;
    for (std::uint16_t opv = 1; opv <= 9; ++opv) st.requests += c_requests_[opv].value();
    st.errors = c_errors_total_.value();
    st.ticks = c_ticks_total_.value();
    st.shed = c_shed_total_.value();
    for (const auto& s : shards_) st.live_instances += s->size();
    return st;
}

Frame Server::ok_frame(const Frame& req, std::vector<std::uint8_t> payload) {
    Frame f;
    f.opcode = req.opcode;
    f.status = Err::Ok;
    f.request_id = req.request_id;
    f.payload = std::move(payload);
    return f;
}

Frame Server::error_frame(const Frame& req, Err code, const std::string& message) {
    c_errors_total_.inc();
    metrics_
        ->counter("sbd_serve_errors_by_code_total", "coded request rejections by code",
                  {{"code", to_string(code)}})
        .inc();
    PayloadWriter w;
    w.str(message);
    Frame f;
    f.opcode = req.opcode;
    f.status = code;
    f.request_id = req.request_id;
    f.payload = w.take();
    return f;
}

Frame Server::handle_request(const Frame& req) {
    const Clock::time_point t0 = Clock::now();
    const std::uint16_t opv = static_cast<std::uint16_t>(req.opcode);
    if (opv >= 1 && opv <= 9) c_requests_[opv].inc();
    Frame resp;
    try {
        if (SBD_FAULT_HIT("serve.dispatch")) {
            // Injected before any shard state is read or written: the
            // request fails coded and the service state is untouched.
            resp = error_frame(req, Err::FaultInjected,
                               "injected dispatch fault (" + std::string(to_string(req.opcode)) +
                                   ")");
        } else {
            PayloadReader r(req.payload);
            switch (req.opcode) {
            case Op::CreateInstances: resp = do_create(req, r); break;
            case Op::DestroyInstances: resp = do_destroy(req, r); break;
            case Op::PostInputs: resp = do_post_inputs(req, r); break;
            case Op::Tick: resp = do_tick(req, r); break;
            case Op::ReadOutputs: resp = do_read_outputs(req, r); break;
            case Op::Snapshot: resp = do_snapshot(req, r); break;
            case Op::Stats: resp = do_stats(req, r); break;
            case Op::Shutdown: resp = do_shutdown(req, r); break;
            case Op::UpgradeModel: resp = do_upgrade(req, r); break;
            default:
                resp = error_frame(req, Err::BadOpcode,
                                   "unknown opcode " + std::to_string(opv));
            }
        }
    } catch (const ServeError& e) {
        resp = error_frame(req, e.code(), e.what());
    } catch (const durable::DurableError& e) {
        // journal-then-apply: every append happens before its mutation, so
        // a failed append rejects the request with state untouched.
        resp = error_frame(req, Err::DurableFailed, e.what());
    } catch (const resilience::DeadlineExceeded& e) {
        resp = error_frame(req, Err::DeadlineExceeded, e.what());
    } catch (const resilience::FaultInjected& e) {
        resp = error_frame(req, Err::FaultInjected, e.what());
    } catch (const std::exception& e) {
        resp = error_frame(req, Err::Internal, e.what());
    }
    h_request_ns_.observe(ns_since(t0));
    return resp;
}

Err Server::resolve(const WireHandle& h, std::uint64_t tenant, runtime::InstanceId* out) const {
    if (h.shard >= shards_.size()) return Err::BadHandle;
    const runtime::InstanceId id{h.slot, h.generation};
    if (!shards_[h.shard]->owned_by(id, tenant)) return Err::BadHandle;
    *out = id;
    return Err::Ok;
}

Frame Server::do_create(const Frame& req, PayloadReader& r) {
    const std::uint64_t tenant = r.u64();
    const std::uint32_t count = r.u32();
    r.done();
    QueuedExclusive lk(state_m_, g_queue_depth_);
    if (stopping_.load(std::memory_order_relaxed))
        return error_frame(req, Err::ShuttingDown, "server is shutting down");
    const std::size_t live = tenant_instances_[tenant];
    if (cfg_.tenant_max_instances != 0 && live + count > cfg_.tenant_max_instances) {
        c_shed_total_.inc();
        return error_frame(req, Err::TenantBudget,
                           "tenant " + std::to_string(tenant) + " over budget: " +
                               std::to_string(live) + " live + " + std::to_string(count) +
                               " requested > " + std::to_string(cfg_.tenant_max_instances));
    }
    std::size_t total_free = 0;
    for (const auto& s : shards_) total_free += s->free();
    if (count > total_free)
        return error_frame(req, Err::PoolFull,
                           "no capacity: " + std::to_string(count) + " requested, " +
                               std::to_string(total_free) + " free");
    // Admission passed for the whole batch: placement cannot fail now.
    // Journal before applying — replay reruns the same deterministic
    // placement loop against the same pool state, so the handles it mints
    // match the ones acked here bit-for-bit.
    journal_append(durable::RecordKind::Create, req.payload);
    PayloadWriter w;
    w.u32(count);
    for (const WireHandle& h : apply_create_locked(tenant, count)) write_handle(w, h);
    return ok_frame(req, w.take());
}

std::vector<WireHandle> Server::apply_create_locked(std::uint64_t tenant,
                                                    std::uint32_t count) {
    std::vector<WireHandle> out;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        while (shards_[next_shard_]->free() == 0)
            next_shard_ = (next_shard_ + 1) % shards_.size();
        const runtime::InstanceId id = shards_[next_shard_]->create(tenant);
        out.push_back({static_cast<std::uint32_t>(next_shard_), id.slot, id.generation});
        next_shard_ = (next_shard_ + 1) % shards_.size();
    }
    tenant_instances_[tenant] += count;
    refresh_shard_gauges();
    return out;
}

Frame Server::do_destroy(const Frame& req, PayloadReader& r) {
    const std::uint64_t tenant = r.u64();
    const std::uint32_t count = r.u32();
    std::vector<WireHandle> handles(count);
    for (WireHandle& h : handles) h = read_handle(r);
    r.done();
    QueuedExclusive lk(state_m_, g_queue_depth_);
    // Validate the whole batch before destroying anything: a bad handle
    // rejects the request without side effects.
    std::vector<runtime::InstanceId> ids(count);
    for (std::uint32_t i = 0; i < count; ++i)
        if (resolve(handles[i], tenant, &ids[i]) != Err::Ok)
            return error_frame(req, Err::BadHandle,
                               "stale or foreign handle at index " + std::to_string(i));
    journal_append(durable::RecordKind::Destroy, req.payload);
    for (std::uint32_t i = 0; i < count; ++i) shards_[handles[i].shard]->destroy(ids[i]);
    tenant_instances_[tenant] -= count;
    refresh_shard_gauges();
    return ok_frame(req);
}

Frame Server::do_post_inputs(const Frame& req, PayloadReader& r) {
    const std::uint64_t tenant = r.u64();
    const std::uint32_t count = r.u32();
    const std::size_t nin = shards_[0]->pool().num_inputs();
    std::vector<WireHandle> handles(count);
    std::vector<double> rows(static_cast<std::size_t>(count) * nin);
    for (std::uint32_t i = 0; i < count; ++i) {
        handles[i] = read_handle(r);
        r.f64s(std::span(rows).subspan(static_cast<std::size_t>(i) * nin, nin));
    }
    r.done();
    QueuedShared lk(state_m_, g_queue_depth_);
    std::vector<runtime::InstanceId> ids(count);
    for (std::uint32_t i = 0; i < count; ++i)
        if (resolve(handles[i], tenant, &ids[i]) != Err::Ok)
            return error_frame(req, Err::BadHandle,
                               "stale or foreign handle at index " + std::to_string(i));
    // Posts run under the *shared* lock, so journal order must be pinned to
    // apply order explicitly — durable_post_m_ spans append+apply.
    std::unique_lock<std::mutex> post_order;
    if (store_ != nullptr) {
        post_order = std::unique_lock(durable_post_m_);
        journal_append(durable::RecordKind::PostInputs, req.payload);
    }
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::span<double> dst = shards_[handles[i].shard]->pool().inputs(ids[i]);
        const std::span<const double> src(rows.data() + static_cast<std::size_t>(i) * nin, nin);
        std::copy(src.begin(), src.end(), dst.begin());
    }
    return ok_frame(req);
}

Frame Server::do_tick(const Frame& req, PayloadReader& r) {
    (void)r.u64(); // tenant: the tick is a global instant; admission is per request
    const std::uint32_t n = r.u32();
    r.done();
    QueuedExclusive lk(state_m_, g_queue_depth_);
    if (stopping_.load(std::memory_order_relaxed))
        return error_frame(req, Err::ShuttingDown, "server is shutting down");
    const resilience::Deadline deadline = resilience::Deadline::after_ms(cfg_.tick_deadline_ms);
    std::uint32_t executed = 0;
    for (std::uint32_t t = 0; t < n; ++t) {
        // Every admission check fires before the first shard of the instant
        // steps, so a rejection here leaves all shards at a consistent,
        // fully completed instant — shed, never torn.
        if (deadline.due("serve.deadline"))
            return error_frame(req, Err::DeadlineExceeded,
                               "tick deadline expired after " + std::to_string(executed) +
                                   " of " + std::to_string(n) + " instants");
        if (SBD_FAULT_HIT("serve.tick"))
            return error_frame(req, Err::FaultInjected,
                               "injected tick fault after " + std::to_string(executed) +
                                   " of " + std::to_string(n) + " instants");
        // One journal record per instant, appended before any shard steps:
        // a crash between append and step makes replay complete the instant
        // (unacked, but a valid prefix of the timeline); an append failure
        // sheds the rest of the batch coded, never a torn instant.
        try {
            journal_append(durable::RecordKind::Tick, {});
        } catch (const durable::DurableError& e) {
            return error_frame(req, Err::DurableFailed,
                               std::string(e.what()) + " after " + std::to_string(executed) +
                                   " of " + std::to_string(n) + " instants");
        }
        step_instant_locked();
        ++executed;
    }
    maybe_checkpoint_locked();
    PayloadWriter w;
    w.u64(ticks_.load(std::memory_order_relaxed));
    w.u32(executed);
    return ok_frame(req, w.take());
}

void Server::step_instant_locked() {
    const Clock::time_point t0 = Clock::now();
    for (const auto& s : shards_) s->engine().tick();
    h_tick_ns_.observe(ns_since(t0));
    c_ticks_total_.inc();
    ticks_.fetch_add(1, std::memory_order_relaxed);
}

Frame Server::do_read_outputs(const Frame& req, PayloadReader& r) {
    const std::uint64_t tenant = r.u64();
    const std::uint32_t count = r.u32();
    std::vector<WireHandle> handles(count);
    for (WireHandle& h : handles) h = read_handle(r);
    r.done();
    QueuedShared lk(state_m_, g_queue_depth_);
    std::vector<runtime::InstanceId> ids(count);
    for (std::uint32_t i = 0; i < count; ++i)
        if (resolve(handles[i], tenant, &ids[i]) != Err::Ok)
            return error_frame(req, Err::BadHandle,
                               "stale or foreign handle at index " + std::to_string(i));
    PayloadWriter w;
    w.u32(count);
    for (std::uint32_t i = 0; i < count; ++i)
        w.f64s(shards_[handles[i].shard]->pool().outputs(ids[i]));
    return ok_frame(req, w.take());
}

Frame Server::do_snapshot(const Frame& req, PayloadReader& r) {
    const std::uint64_t tenant = r.u64();
    const WireHandle h = read_handle(r);
    r.done();
    QueuedShared lk(state_m_, g_queue_depth_);
    runtime::InstanceId id;
    if (resolve(h, tenant, &id) != Err::Ok)
        return error_frame(req, Err::BadHandle, "stale or foreign handle");
    const std::vector<double> blob = shards_[h.shard]->pool().snapshot_state(id);
    PayloadWriter w;
    w.u32(static_cast<std::uint32_t>(blob.size()));
    w.f64s(blob);
    return ok_frame(req, w.take());
}

Frame Server::do_stats(const Frame& req, PayloadReader& r) {
    (void)r.u64(); // tenant
    r.done();
    PayloadWriter w;
    w.str(metrics_text()); // takes the shared lock itself
    return ok_frame(req, w.take());
}

Frame Server::do_shutdown(const Frame& req, PayloadReader& r) {
    (void)r.u64(); // tenant
    r.done();
    // The reply goes out first; handle_conn() then calls request_stop(), so
    // the client always sees its SHUTDOWN acknowledged.
    return ok_frame(req);
}

Frame Server::do_upgrade(const Frame& req, PayloadReader& r) {
    (void)r.u64(); // tenant: upgrades are control-plane, fleet-wide
    const std::uint32_t flags = r.u32();
    const std::string source = r.str();
    r.done();
    if (!cfg_.upgrade)
        return error_frame(req, Err::UpgradeRejected,
                           "live upgrades are disabled on this server");
    if (SBD_FAULT_HIT("serve.upgrade"))
        // Injected before any compile work: the running version, every
        // shard and every instance are untouched.
        throw resilience::FaultInjected("injected upgrade fault before compile");

    // Phase 1 (shared lock): pin the running version. sys_/root_ only move
    // under the exclusive lock, so a consistent triple read here stays
    // valid until the version counter says otherwise.
    const codegen::CompiledSystem* old_sys;
    BlockPtr old_root;
    std::shared_ptr<const codegen::CompiledSystem> old_owner; // keeps it alive unlocked
    std::uint64_t base_version;
    {
        QueuedShared lk(state_m_, g_queue_depth_);
        if (stopping_.load(std::memory_order_relaxed))
            return error_frame(req, Err::ShuttingDown, "server is shutting down");
        old_sys = sys_;
        old_root = root_;
        old_owner = owned_sys_;
        base_version = model_version_.load(std::memory_order_relaxed);
    }

    // Phase 2 (unlocked — traffic keeps flowing): incremental recompile
    // through the shared profile cache, then diff and migration planning.
    upgrade::ModelVersion next;
    upgrade::ModelDiff diff;
    upgrade::MigrationPlan plan;
    try {
        next = upgrade::compile_version(source, *cfg_.upgrade, base_version + 1);
        diff = upgrade::diff_models(old_root, next.root);
        plan = upgrade::plan_migration(*old_sys, old_root, *next.sys, next.root);
        if (plan.drain_and_replace() && (flags & kUpgradeAllowDrain) == 0)
            throw upgrade::UpgradeError(upgrade::UpgradeError::Code::Incompatible,
                                        "drain-and-replace required (" + plan.drain_reason() +
                                            ") but the request does not allow draining");
    } catch (const upgrade::UpgradeError& e) {
        c_upgrades_rejected_.inc();
        return error_frame(req, Err::UpgradeRejected,
                           std::string(upgrade::to_string(e.code())) + ": " + e.what());
    }

    // Phase 3 (exclusive lock — the instant-boundary quiesce): recheck the
    // race, prepare every shard, then commit every shard. prepare touches
    // nothing and commit cannot throw, so the fleet is never torn: either
    // all shards swap or none do.
    const Clock::time_point swap_t0 = Clock::now();
    {
        QueuedExclusive lk(state_m_, g_queue_depth_);
        if (stopping_.load(std::memory_order_relaxed))
            return error_frame(req, Err::ShuttingDown, "server is shutting down");
        if (model_version_.load(std::memory_order_relaxed) != base_version) {
            c_upgrades_rejected_.inc();
            return error_frame(req, Err::UpgradeRejected,
                               "conflict: a concurrent upgrade was applied first");
        }
        std::vector<runtime::InstancePool::Rebind> staged;
        staged.reserve(shards_.size());
        try {
            for (const auto& s : shards_)
                staged.push_back(s->pool().prepare_rebind(*next.sys, next.root, next.exec, plan));
        } catch (const std::exception& e) {
            c_upgrades_rejected_.inc();
            return error_frame(req, Err::UpgradeRejected,
                               std::string("migration failed: ") + e.what());
        }
        // Journal after prepare succeeded (commit below cannot fail) and
        // before commit: an append failure rejects the upgrade with the old
        // version fully intact, and a crash after the append replays the
        // upgrade deterministically — post-upgrade journal records are
        // never replayed against the pre-upgrade model.
        if (store_ != nullptr) {
            PayloadWriter jw;
            jw.u32(flags);
            jw.str(source);
            const std::vector<std::uint8_t> jrec = jw.take();
            try {
                journal_append(durable::RecordKind::Upgrade, jrec);
            } catch (const durable::DurableError& e) {
                c_upgrades_rejected_.inc();
                return error_frame(req, Err::DurableFailed, e.what());
            }
        }
        for (std::size_t s = 0; s < shards_.size(); ++s)
            shards_[s]->pool().commit_rebind(std::move(staged[s]));
        owned_sys_ = next.sys;
        owned_exec_ = next.exec;
        sys_ = owned_sys_.get();
        root_ = next.root;
        cfg_.executable = next.exec;
        model_source_ = source;
        model_version_.store(next.version, std::memory_order_relaxed);
    }
    const std::uint64_t swap_ns = ns_since(swap_t0);

    c_upgrades_applied_.inc();
    c_upgrade_units_reused_.inc(next.macro_reuses);
    c_upgrade_units_compiled_.inc(next.macro_compiles);
    h_upgrade_swap_ns_.observe(swap_ns);
    g_model_version_.set(static_cast<std::int64_t>(next.version));

    PayloadWriter w;
    w.u64(next.version);
    w.u64(next.macro_compiles);
    w.u64(next.macro_reuses);
    w.u64(diff.units_total);
    w.u64(diff.units_reused);
    w.u32(plan.drain_and_replace() ? 1 : 0);
    w.u64(plan.copied());
    w.u64(plan.initialized());
    w.u64(plan.dropped());
    w.u64(next.compile_ns);
    w.u64(swap_ns);
    return ok_frame(req, w.take());
}

// ------------------------------------------------------------- durability

void Server::journal_append(durable::RecordKind kind, std::span<const std::uint8_t> payload) {
    if (store_ == nullptr) return;
    store_->journal().append(kind, payload);
}

void Server::maybe_checkpoint_locked() {
    if (store_ == nullptr || cfg_.durable->checkpoint_every_ticks == 0) return;
    const std::uint64_t t = ticks_.load(std::memory_order_relaxed);
    if (t - last_checkpoint_ticks_ < cfg_.durable->checkpoint_every_ticks) return;
    write_checkpoint_locked();
}

void Server::write_checkpoint_locked() {
    // The checkpoint covers every record appended so far: mutations only
    // happen under the exclusive lock we hold (posts additionally serialize
    // through durable_post_m_ before their shared-lock apply), so
    // next_seq-1 is exact.
    const std::uint64_t seq = store_->journal().next_seq() - 1;
    const std::vector<std::uint8_t> payload = checkpoint_payload_locked();
    if (store_->checkpoints().write(seq, payload)) {
        store_->checkpoints().retain(2);
        store_->journal().truncate_until(seq);
    }
    // On failure the journal keeps the full tail, so nothing is lost —
    // resetting the cadence marker either way just retries one interval
    // later instead of on every subsequent tick.
    last_checkpoint_ticks_ = ticks_.load(std::memory_order_relaxed);
}

std::vector<std::uint8_t> Server::checkpoint_payload_locked() const {
    PayloadWriter w;
    w.u64(model_version_.load(std::memory_order_relaxed));
    w.str(model_source_);
    w.u64(ticks_.load(std::memory_order_relaxed));
    w.u64(next_shard_);
    w.u32(static_cast<std::uint32_t>(tenant_instances_.size()));
    // Sorted for determinism: two checkpoints of identical state are
    // byte-identical, which makes them trivially diffable in tests.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> tenants;
    tenants.reserve(tenant_instances_.size());
    for (const auto& [t, n] : tenant_instances_) tenants.emplace_back(t, n);
    std::sort(tenants.begin(), tenants.end());
    for (const auto& [t, n] : tenants) {
        w.u64(t);
        w.u64(n);
    }
    w.u32(static_cast<std::uint32_t>(shards_.size()));
    for (const auto& shard : shards_) {
        const runtime::InstancePool& pool = shard->pool();
        const runtime::InstancePool::Image img = pool.image();
        w.u32(static_cast<std::uint32_t>(pool.capacity()));
        w.u32(static_cast<std::uint32_t>(img.free_order.size()));
        for (const std::uint32_t s : img.free_order) w.u32(s);
        w.u32(static_cast<std::uint32_t>(img.live_order.size()));
        for (const std::uint32_t s : img.live_order) w.u32(s);
        for (const std::uint32_t g : img.generations) w.u32(g);
        for (const std::uint32_t s : img.live_order) w.u64(shard->owners()[s]);
        for (const std::vector<double>& blob : img.blobs) {
            w.u32(static_cast<std::uint32_t>(blob.size()));
            w.f64s(blob);
        }
    }
    return w.take();
}

void Server::restore_checkpoint(std::span<const std::uint8_t> payload) {
    static const runtime::DrainMigrator kDrain;
    try {
        PayloadReader r(payload);
        const std::uint64_t version = r.u64();
        const std::string source = r.str();
        const std::uint64_t ticks = r.u64();
        const std::uint64_t next_shard = r.u64();
        const std::uint32_t ntenants = r.u32();
        std::unordered_map<std::uint64_t, std::size_t> tenants;
        for (std::uint32_t i = 0; i < ntenants; ++i) {
            const std::uint64_t t = r.u64();
            tenants[t] = static_cast<std::size_t>(r.u64());
        }
        const std::uint32_t nshards = r.u32();
        if (nshards != shards_.size())
            throw durable::DurableError(
                "durable: checkpoint has " + std::to_string(nshards) + " shards, server booted with " +
                std::to_string(shards_.size()) + " — restart with the original topology");
        // The checkpoint's blobs are laid out for the checkpointed model
        // version; rebind the (still empty) shards to it before restoring.
        if (version != 1 || (!source.empty() && source != model_source_))
            install_version_for_recovery(source, version, &kDrain);
        for (auto& shard : shards_) {
            runtime::InstancePool& pool = shard->pool();
            const std::uint32_t cap = r.u32();
            if (cap != pool.capacity())
                throw durable::DurableError(
                    "durable: checkpoint shard capacity " + std::to_string(cap) +
                    " != configured " + std::to_string(pool.capacity()) +
                    " — restart with the original topology");
            runtime::InstancePool::Image img;
            img.free_order.resize(r.u32());
            for (std::uint32_t& s : img.free_order) s = r.u32();
            img.live_order.resize(r.u32());
            for (std::uint32_t& s : img.live_order) s = r.u32();
            img.generations.resize(cap);
            for (std::uint32_t& g : img.generations) g = r.u32();
            std::vector<std::uint64_t> owners(cap, 0);
            for (const std::uint32_t s : img.live_order) {
                if (s >= cap) throw durable::DurableError("durable: checkpoint live slot out of range");
                owners[s] = r.u64();
            }
            img.blobs.resize(img.live_order.size());
            for (std::vector<double>& blob : img.blobs) {
                blob.resize(r.u32());
                r.f64s(blob);
            }
            pool.restore_image(img);
            shard->restore_owners(std::move(owners));
        }
        r.done();
        tenant_instances_ = std::move(tenants);
        next_shard_ = static_cast<std::size_t>(next_shard);
        ticks_.store(ticks, std::memory_order_relaxed);
        c_ticks_total_.inc(ticks); // keep the metrics mirror consistent
        model_source_ = source;
        model_version_.store(version, std::memory_order_relaxed);
        g_model_version_.set(static_cast<std::int64_t>(version));
        last_checkpoint_ticks_ = ticks;
    } catch (const ServeError&) {
        throw durable::DurableError(
            "durable: checkpoint payload does not parse — written by an incompatible build?");
    } catch (const std::invalid_argument& e) {
        throw durable::DurableError(
            std::string("durable: checkpoint does not match the boot configuration: ") + e.what());
    } catch (const upgrade::UpgradeError& e) {
        throw durable::DurableError(
            std::string("durable: cannot recompile the checkpointed model version: ") + e.what());
    }
}

void Server::install_version_for_recovery(const std::string& source, std::uint64_t version,
                                          const runtime::StateMigrator* migrator) {
    if (!cfg_.upgrade)
        throw durable::DurableError(
            "durable: the store holds model version " + std::to_string(version) +
            " but live upgrades are disabled — recovery cannot recompile it");
    upgrade::ModelVersion next = upgrade::compile_version(source, *cfg_.upgrade, version);
    std::unique_ptr<upgrade::MigrationPlan> plan;
    if (migrator == nullptr) {
        plan = std::make_unique<upgrade::MigrationPlan>(
            upgrade::plan_migration(*sys_, root_, *next.sys, next.root));
        migrator = plan.get();
    }
    std::vector<runtime::InstancePool::Rebind> staged;
    staged.reserve(shards_.size());
    for (const auto& s : shards_)
        staged.push_back(s->pool().prepare_rebind(*next.sys, next.root, next.exec, *migrator));
    for (std::size_t s = 0; s < shards_.size(); ++s)
        shards_[s]->pool().commit_rebind(std::move(staged[s]));
    owned_sys_ = next.sys;
    owned_exec_ = next.exec;
    sys_ = owned_sys_.get();
    root_ = next.root;
    cfg_.executable = next.exec;
    model_source_ = source;
    model_version_.store(version, std::memory_order_relaxed);
    g_model_version_.set(static_cast<std::int64_t>(version));
}

void Server::replay_record(const durable::Record& rec) {
    PayloadReader r(rec.payload);
    switch (rec.kind) {
    case durable::RecordKind::Create: {
        const std::uint64_t tenant = r.u64();
        const std::uint32_t count = r.u32();
        r.done();
        apply_create_locked(tenant, count);
        return;
    }
    case durable::RecordKind::Destroy: {
        const std::uint64_t tenant = r.u64();
        const std::uint32_t count = r.u32();
        std::vector<WireHandle> handles(count);
        for (WireHandle& h : handles) h = read_handle(r);
        r.done();
        std::vector<runtime::InstanceId> ids(count);
        for (std::uint32_t i = 0; i < count; ++i)
            if (resolve(handles[i], tenant, &ids[i]) != Err::Ok)
                throw durable::DurableError("durable: replay diverged on DESTROY handle");
        for (std::uint32_t i = 0; i < count; ++i) shards_[handles[i].shard]->destroy(ids[i]);
        tenant_instances_[tenant] -= count;
        return;
    }
    case durable::RecordKind::PostInputs: {
        const std::uint64_t tenant = r.u64();
        const std::uint32_t count = r.u32();
        const std::size_t nin = shards_[0]->pool().num_inputs();
        for (std::uint32_t i = 0; i < count; ++i) {
            const WireHandle h = read_handle(r);
            runtime::InstanceId id;
            if (resolve(h, tenant, &id) != Err::Ok)
                throw durable::DurableError("durable: replay diverged on POST_INPUTS handle");
            r.f64s(shards_[h.shard]->pool().inputs(id).subspan(0, nin));
        }
        r.done();
        return;
    }
    case durable::RecordKind::Tick: {
        r.done();
        step_instant_locked();
        return;
    }
    case durable::RecordKind::Upgrade: {
        (void)r.u32(); // flags: compatibility was proven when it applied live
        const std::string source = r.str();
        r.done();
        install_version_for_recovery(
            source, model_version_.load(std::memory_order_relaxed) + 1, nullptr);
        return;
    }
    }
    throw durable::DurableError("durable: unknown journal record kind " +
                                std::to_string(static_cast<std::uint32_t>(rec.kind)));
}

RecoveryStats Server::recover() {
    RecoveryStats rs;
    if (store_ == nullptr) return rs;
    const Clock::time_point t0 = Clock::now();
    std::uint64_t from_seq = 0;
    if (auto ck = store_->checkpoints().load_latest()) {
        rs.checkpoint_fallbacks = ck->fallbacks;
        restore_checkpoint(ck->payload);
        from_seq = ck->seq;
        rs.checkpoint_seq = ck->seq;
        rs.recovered = true;
    }
    const durable::ScanResult scan =
        durable::Journal::scan(store_->options().journal_dir(), from_seq);
    for (const durable::Record& rec : scan.records) {
        try {
            replay_record(rec);
        } catch (const std::exception&) {
            // A coded fault (armed chaos plan) or a disabled upgrade
            // context stopped the replay. Everything applied so far is a
            // consistent prefix of the journaled timeline; serving resumes
            // from there rather than dying.
            rs.replay_aborted = true;
            break;
        }
        ++rs.replayed_records;
        if (rec.kind == durable::RecordKind::Tick) ++rs.replayed_ticks;
        rs.recovered = true;
    }
    rs.recovered_version = model_version_.load(std::memory_order_relaxed);
    rs.recovered_ticks = ticks_.load(std::memory_order_relaxed);
    for (const auto& s : shards_) rs.live_instances += s->size();
    rs.recovery_ns = ns_since(t0);
    last_checkpoint_ticks_ = rs.recovered_ticks;
    store_->note_recovery(rs.replayed_records, rs.replayed_ticks, rs.recovery_ns);
    refresh_shard_gauges();
    return rs;
}

} // namespace sbd::serve
