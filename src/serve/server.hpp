// sbd_serve — a long-running, sharded, multi-tenant simulation service.
//
// The server hosts N shards, each an Engine-backed InstancePool of one
// compiled model, and speaks the SBDS length-prefixed binary protocol over
// a TCP or Unix socket (protocol.hpp). A connection whose first bytes are
// "GET " instead of the frame magic gets a one-shot HTTP response carrying
// the Prometheus text exposition of the server's metrics registry — the
// `GET /metrics` scrape endpoint, no HTTP library required.
//
// Concurrency model: one accept thread, one handler thread per connection,
// and a server-wide reader/writer lock over shard state. Structural
// operations and the global tick (CREATE / DESTROY / TICK / SHUTDOWN) take
// the lock exclusively; data-plane operations (POST_INPUTS / READ_OUTPUTS /
// SNAPSHOT / STATS) share it — tenants own disjoint slots with disjoint
// arena buffers, so same-mode requests never race. A TICK advances every
// shard one synchronous instant under the exclusive lock; admission checks
// (deadline, fault points, shutdown) all happen *before* the first shard
// steps, so a rejected tick leaves every instance untouched — coded
// rejections, never a torn instant.
#ifndef SBD_SERVE_SERVER_HPP
#define SBD_SERVE_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "durable/durable.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/shard.hpp"
#include "serve/socket.hpp"
#include "upgrade/upgrade.hpp"

namespace sbd::serve {

struct ServerConfig {
    Endpoint endpoint;                 ///< listen address (tcp port 0 = ephemeral)
    std::size_t shards = 1;            ///< engine shards
    /// Execution backend shared by every shard engine (one native artifact
    /// serves the whole daemon). nullptr = interpreter.
    std::shared_ptr<const codegen::Executable> executable;
    std::size_t shard_capacity = 1024; ///< instance slots per shard
    std::size_t engine_threads = 1;    ///< worker threads per shard engine
    /// Wall-clock budget for one TICK request (all requested instants).
    /// Checked before each instant; expiry rejects with DEADLINE_EXCEEDED
    /// before any shard of that instant advances. 0 = no deadline.
    std::uint64_t tick_deadline_ms = 0;
    /// Per-tenant live-instance budget; a CREATE_INSTANCES that would
    /// exceed it is shed with TENANT_BUDGET (nothing is created). 0 = off.
    std::uint64_t tenant_max_instances = 0;
    /// Metrics sink (serve request/tick/latency families, per-shard
    /// gauges). nullptr = the server creates a private registry, so STATS
    /// and /metrics always work.
    obs::MetricsRegistry* metrics = nullptr;
    /// Live-upgrade compile context (how to recompile a new model version:
    /// the boot-time clustering method/options, the shared profile cache,
    /// the backend recipe). nullopt = UPGRADE_MODEL is rejected coded —
    /// operators opt into live upgrades by supplying the context.
    std::optional<upgrade::CompileContext> upgrade;
    /// Durable store (write-ahead journal + checkpoints under one data
    /// dir). nullopt = in-memory only, the historical behaviour. With a
    /// store attached every mutation is journaled *before* it is applied —
    /// a rejected append (DURABLE_FAILED) leaves state untouched, and a
    /// crash loses at most unacked work (none at all in FsyncMode::Always).
    std::optional<durable::Options> durable;
    /// Source text of the boot model. Checkpoints carry the live version's
    /// source so recovery can recompile it (required to recover across an
    /// UPGRADE_MODEL; recompiling needs `upgrade` to be set too).
    std::string model_source;
};

/// What Server::recover() found and did. All counters are zero when the
/// data dir was empty (first boot).
struct RecoveryStats {
    bool recovered = false; ///< a checkpoint or journal records were applied
    std::uint64_t checkpoint_seq = 0;       ///< journal seq the checkpoint covered
    std::size_t checkpoint_fallbacks = 0;   ///< newer checkpoints skipped as invalid
    std::uint64_t replayed_records = 0;     ///< journal records applied after the checkpoint
    std::uint64_t replayed_ticks = 0;       ///< TICK records among them
    std::uint64_t recovered_version = 1;    ///< live model version after recovery
    std::uint64_t recovered_ticks = 0;      ///< server tick counter after recovery
    std::size_t live_instances = 0;
    std::uint64_t recovery_ns = 0;
    /// Replay stopped early on a coded fault (only possible under an armed
    /// fault plan or a disabled upgrade context); the recovered state is a
    /// consistent prefix of the journaled timeline.
    bool replay_aborted = false;
};

/// Aggregate counters mirrored from the metrics registry (for tools/tests).
struct ServerStats {
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t ticks = 0;
    std::uint64_t shed = 0; ///< TENANT_BUDGET rejections
    std::size_t live_instances = 0;
};

class Server {
public:
    /// Binds the listen socket immediately (so an ephemeral port is known
    /// before start()); throws std::runtime_error on bind failure.
    Server(const codegen::CompiledSystem& sys, BlockPtr root, ServerConfig cfg);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// The bound endpoint (tcp port resolved when 0 was requested).
    const Endpoint& endpoint() const { return listener_.bound_endpoint(); }

    void start();        ///< launches the accept loop in a background thread
    void wait();         ///< blocks until the accept loop exits (shutdown)
    void run() {         ///< start() + wait() — the daemon entry point
        start();
        wait();
    }
    /// Initiates shutdown: stops accepting, unblocks every connection.
    /// Idempotent; safe from any thread (including request handlers).
    void request_stop();
    bool stopping() const { return stopping_.load(std::memory_order_relaxed); }

    /// Rebuilds state from the durable store (newest valid checkpoint +
    /// journal-tail replay). Call once, before start(). Corrupt store
    /// *contents* degrade (checkpoint fallback, torn-tail truncation,
    /// shorter replay) — they never throw; a checkpoint that is intact but
    /// incompatible with the boot configuration (different shard topology,
    /// or an upgraded version with no upgrade context) throws DurableError,
    /// because silently serving the wrong state would be worse. No-op
    /// returning a default RecoveryStats when no durable store is attached.
    RecoveryStats recover();

    /// The attached durable store, or nullptr (tests and tools poke at
    /// journal/checkpoint internals through this).
    durable::Store* durable_store() { return store_.get(); }

    std::uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }
    /// The live model version: 1 at boot, +1 per applied UPGRADE_MODEL.
    std::uint64_t model_version() const {
        return model_version_.load(std::memory_order_relaxed);
    }
    ServerStats stats_view() const;
    obs::MetricsRegistry* metrics() const { return metrics_; }

    /// Prometheus text of the registry with shard gauges refreshed — what
    /// both STATS and GET /metrics return.
    std::string metrics_text();

private:
    void accept_loop();
    void handle_conn(std::shared_ptr<Conn> conn);
    void handle_http(Conn& conn);
    Frame handle_request(const Frame& req);

    Frame do_create(const Frame& req, PayloadReader& r);
    Frame do_destroy(const Frame& req, PayloadReader& r);
    Frame do_post_inputs(const Frame& req, PayloadReader& r);
    Frame do_tick(const Frame& req, PayloadReader& r);
    Frame do_read_outputs(const Frame& req, PayloadReader& r);
    Frame do_snapshot(const Frame& req, PayloadReader& r);
    Frame do_stats(const Frame& req, PayloadReader& r);
    Frame do_shutdown(const Frame& req, PayloadReader& r);
    Frame do_upgrade(const Frame& req, PayloadReader& r);

    Frame ok_frame(const Frame& req, std::vector<std::uint8_t> payload = {});
    Frame error_frame(const Frame& req, Err code, const std::string& message);

    /// Resolves a wire handle to (shard, id); Err::Ok when live and owned.
    Err resolve(const WireHandle& h, std::uint64_t tenant, runtime::InstanceId* out) const;
    void refresh_shard_gauges();

    // ---- durable plumbing (all no-ops when store_ is null) -------------
    /// Appends one journal record; throws durable::DurableError on failure
    /// — callers append *before* applying, so a throw rejects the mutation
    /// coded (DURABLE_FAILED) with state untouched.
    void journal_append(durable::RecordKind kind, std::span<const std::uint8_t> payload);
    /// Advances every shard one instant and bumps the tick counters (the
    /// shared core of do_tick and TICK-record replay).
    void step_instant_locked();
    /// CREATE's placement loop + bookkeeping (shared with replay); the
    /// caller has already admitted the batch.
    std::vector<WireHandle> apply_create_locked(std::uint64_t tenant, std::uint32_t count);
    /// Checkpoint cadence check, called at the end of a TICK batch under
    /// the exclusive lock.
    void maybe_checkpoint_locked();
    void write_checkpoint_locked();
    std::vector<std::uint8_t> checkpoint_payload_locked() const;
    /// Parses + applies a checkpoint payload into a freshly constructed
    /// server (empty shards). Throws DurableError on boot-config mismatch.
    void restore_checkpoint(std::span<const std::uint8_t> payload);
    /// Applies one journal record during recovery (no journaling, no
    /// admission — the record was admitted live).
    void replay_record(const durable::Record& rec);
    /// Recovery-side version install: compiles `source` as `version`
    /// through cfg_.upgrade and rebinds every shard with `migrator`
    /// (DrainMigrator over empty shards when restoring a checkpoint; the
    /// replay of an UPGRADE record plans a real migration first). Runs
    /// single-threaded before start(), so no locking. Throws
    /// upgrade::UpgradeError on compile failure and DurableError when no
    /// upgrade context is configured.
    /// `migrator` nullptr means "plan a real migration from the currently
    /// installed version" (the UPGRADE replay path); a non-null migrator is
    /// used verbatim (checkpoint restore rebinds empty shards with a drain).
    void install_version_for_recovery(const std::string& source, std::uint64_t version,
                                      const runtime::StateMigrator* migrator);

    /// The live model version. sys_/root_ are replaced only under the
    /// exclusive state lock (an UPGRADE_MODEL commit); owned_sys_ and
    /// owned_exec_ keep upgraded versions alive (the boot version is owned
    /// by the caller, so they start null).
    const codegen::CompiledSystem* sys_;
    BlockPtr root_;
    std::shared_ptr<const codegen::CompiledSystem> owned_sys_;
    std::shared_ptr<const codegen::Executable> owned_exec_;
    std::atomic<std::uint64_t> model_version_{1};
    ServerConfig cfg_;
    Listener listener_;
    std::vector<std::unique_ptr<Shard>> shards_;

    /// Exclusive: CREATE/DESTROY/TICK/SHUTDOWN; shared: POST/READ/SNAPSHOT/
    /// STATS. See the concurrency model note above.
    std::shared_mutex state_m_;
    std::unordered_map<std::uint64_t, std::size_t> tenant_instances_;
    std::size_t next_shard_ = 0; ///< round-robin start for balanced creates

    /// Durable store; null when cfg_.durable is unset.
    std::unique_ptr<durable::Store> store_;
    /// Source text of the *live* model version (boot source until an
    /// upgrade commits). Written into every checkpoint. Guarded by state_m_.
    std::string model_source_;
    std::uint64_t last_checkpoint_ticks_ = 0; ///< guarded by state_m_ (exclusive)
    /// POST_INPUTS holds the state lock shared, so two posts to the same
    /// instance could journal in one order and apply in the other. This
    /// mutex spans append+apply for posts, making journal order the apply
    /// order. Only taken when a store is attached.
    std::mutex durable_post_m_;

    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> ticks_{0};
    std::thread accept_thread_;
    std::mutex conns_m_;
    std::vector<std::weak_ptr<Conn>> conns_;
    std::vector<std::thread> handlers_;

    std::shared_ptr<obs::MetricsRegistry> owned_metrics_;
    obs::MetricsRegistry* metrics_ = nullptr;
    obs::Counter c_requests_[10];   ///< by Op (index = opcode, 0 unused)
    obs::Counter c_errors_total_, c_shed_total_, c_ticks_total_, c_accept_faults_,
        c_http_scrapes_, c_connections_total_;
    obs::Counter c_upgrades_applied_, c_upgrades_rejected_, c_upgrade_units_reused_,
        c_upgrade_units_compiled_;
    obs::Histogram h_request_ns_, h_tick_ns_, h_upgrade_swap_ns_;
    obs::Gauge g_connections_, g_queue_depth_, g_model_version_;
    std::vector<obs::Gauge> g_shard_instances_, g_shard_capacity_;
};

} // namespace sbd::serve

#endif
