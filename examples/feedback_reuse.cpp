// The modularity-vs-reusability trade-off, live: the paper's Figures 1-2.
//
// P has sub-blocks A (splitter), B and C. Used standalone, a single
// monolithic step() function would do. Used with the feedback wire
// y1 -> x2 (Figure 2) the monolithic interface deadlocks on a *false*
// input-output dependency, while the flattened diagram is perfectly
// acyclic. The dynamic method's two-function profile embeds fine.

#include <cstdio>

#include "core/compiler.hpp"
#include "core/exec.hpp"
#include "core/reuse.hpp"
#include "sbd/flatten.hpp"
#include "sim/simulator.hpp"
#include "suite/figures.hpp"

int main() {
    using namespace sbd;
    using namespace sbd::codegen;

    const auto p = suite::figure1_p();
    const auto ctx = suite::figure2_context(p); // y1 wired back into x2

    std::printf("== embedding P with the feedback y1 -> x2 (Figure 2)\n\n");
    for (const Method method : {Method::Monolithic, Method::StepGet, Method::Dynamic,
                                Method::DisjointSat}) {
        std::printf("  %-16s ", to_string(method));
        try {
            (void)compile_hierarchy(ctx, method);
            std::printf("ACCEPTED\n");
        } catch (const SdgCycleError& e) {
            std::printf("REJECTED  (%s)\n", e.what());
        }
    }

    // Why: the profiles differ. Compare their exported interfaces and the
    // single-wire reusability score (fraction of semantically legal
    // feedback contexts each profile supports).
    std::printf("\n== profiles of P and their reusability scores\n");
    for (const Method method : {Method::Monolithic, Method::Dynamic}) {
        const auto sys = compile_hierarchy(p, method);
        const auto& cb = sys.at(*p);
        const auto score = reusability(*cb.sdg, cb.profile);
        std::printf("\n-- %s (supports %zu of %zu legal feedback contexts)\n%s",
                    to_string(method), score.supported_contexts, score.legal_contexts,
                    cb.profile.to_string().c_str());
    }

    // And the dynamic code really runs in the feedback context, computing
    // exactly the flattened semantics.
    std::printf("\n== closed-loop execution with the dynamic method\n");
    const auto sys = compile_hierarchy(ctx, Method::Dynamic);
    InterpInstance inst(sys, ctx);
    sim::Simulator reference(flatten(*ctx));
    std::printf("%8s %10s %10s %10s | %10s %10s\n", "instant", "x1", "y1", "y2", "ref y1",
                "ref y2");
    for (int t = 0; t < 5; ++t) {
        const double x1 = 1.0 + t;
        const auto out = inst.step_instant(std::vector<double>{x1});
        const auto ref = reference.step(std::vector<double>{x1});
        std::printf("%8d %10.4f %10.4f %10.4f | %10.4f %10.4f\n", t, x1, out[0], out[1],
                    ref[0], ref[1]);
    }
    return 0;
}
