// The modularity-vs-code-size trade-off: the paper's Figures 4, 5 and 6.
//
// P contains a chain A1..An feeding two outputs through B and C. The
// dynamic method needs only 2 interface functions but replicates the chain
// in both (with a modulo-2 guard counter, Figure 5). Optimal disjoint
// clustering needs 3 functions but shares nothing (Figure 6).

#include <cstdio>

#include "core/compiler.hpp"
#include "core/methods.hpp"
#include "suite/figures.hpp"

int main() {
    using namespace sbd;
    using namespace sbd::codegen;

    const std::size_t n = 4;
    const auto p = suite::figure4_chain(n);

    std::printf("== generated code, dynamic method (paper Figure 5)\n\n");
    const auto dyn = compile_hierarchy(p, Method::Dynamic);
    std::printf("%s\n", dyn.at(*p).code->to_pseudocode().c_str());

    std::printf("== generated code, optimal disjoint clustering (paper Figure 6)\n\n");
    const auto dis = compile_hierarchy(p, Method::DisjointSat);
    std::printf("%s\n", dis.at(*p).code->to_pseudocode().c_str());

    std::printf("== code size as the chain grows\n\n");
    std::printf("%6s | %19s | %19s | %10s\n", "n", "dynamic (fns/LoC)", "disjoint (fns/LoC)",
                "saved LoC");
    for (const std::size_t len : {2u, 4u, 8u, 16u, 32u, 64u}) {
        const auto chain = suite::figure4_chain(len);
        const auto d = compile_hierarchy(chain, Method::Dynamic);
        const auto s = compile_hierarchy(chain, Method::DisjointSat);
        const auto& dc = *d.at(*chain).code;
        const auto& sc = *s.at(*chain).code;
        std::printf("%6zu | %8zu / %8zu | %8zu / %8zu | %10zu\n", len, dc.functions.size(),
                    dc.line_count(), sc.functions.size(), sc.line_count(),
                    dc.line_count() - sc.line_count());
    }
    std::printf("\nBoth interfaces stay maximally reusable; the disjoint one trades one\n"
                "extra interface function for code that grows ~n instead of ~2n.\n");
    return 0;
}
