// Quickstart: modular code generation for the paper's Figure 3.
//
// Builds the macro block P (combinational A and C around a Moore-sequential
// unit delay U), generates modular code with the dynamic method, prints the
// exported profile, the paper-style pseudocode and the equivalent C++, and
// finally executes the generated code against the reference simulator.

#include <cstdio>

#include "core/compiler.hpp"
#include "core/emit_cpp.hpp"
#include "core/exec.hpp"
#include "sbd/flatten.hpp"
#include "sim/simulator.hpp"
#include "suite/figures.hpp"

int main() {
    using namespace sbd;
    using namespace sbd::codegen;

    // 1. The model: P_in -> C -> U(delay) -> A -> P_out.
    const auto p = suite::figure3_p();
    std::printf("== model: %s (%s)\n\n", p->type_name().c_str(),
                to_string(p->block_class()));

    // 2. Modular compilation with the dynamic clustering method. Only the
    //    profiles of A, U, C are used, never their internals.
    const auto sys = compile_hierarchy(p, Method::Dynamic);
    const CompiledBlock& cb = sys.at(*p);

    std::printf("== exported profile (the block's entire public interface)\n%s\n",
                cb.profile.to_string().c_str());
    std::printf("== generated pseudocode (paper style)\n%s\n",
                cb.code->to_pseudocode().c_str());
    std::printf("== generated C++\n%s\n", emit_cpp(sys).c_str());

    // 3. Execute the generated code and cross-check with the reference
    //    simulator on the flattened diagram.
    InterpInstance inst(sys, p);
    sim::Simulator reference(flatten(*p));
    std::printf("== execution (P_out = 3 * delay(0.5 * P_in))\n");
    std::printf("%8s %12s %12s %12s\n", "instant", "P_in", "modular", "reference");
    for (int t = 0; t < 6; ++t) {
        const double input = 2.0 * (t + 1);
        const auto modular = inst.step_instant(std::vector<double>{input});
        const auto ref = reference.step(std::vector<double>{input});
        std::printf("%8d %12.3f %12.3f %12.3f\n", t, input, modular[0], ref[0]);
    }
    return 0;
}
