// End-to-end industrial-style flow on a three-level automotive model: a
// fuel-rate controller in the style of the Simulink fuelsys demo.
//
//   1. compile every subsystem bottom-up (each sees only sub-profiles),
//   2. report profile sizes / code sizes per method,
//   3. write the complete generated C++ to disk,
//   4. run the generated code against the reference simulator on a
//      throttle-step scenario.

#include <cstdio>
#include <fstream>

#include "core/compiler.hpp"
#include "core/emit_cpp.hpp"
#include "core/exec.hpp"
#include "sbd/flatten.hpp"
#include "sim/simulator.hpp"
#include "suite/models.hpp"

int main() {
    using namespace sbd;
    using namespace sbd::codegen;

    const auto model = suite::fuel_controller();
    std::printf("== model: %s, %zu inputs, %zu outputs\n", model->type_name().c_str(),
                model->num_inputs(), model->num_outputs());

    std::printf("\n== per-block compilation report (dynamic vs optimal disjoint)\n\n");
    std::printf("%-18s | %9s | %13s | %13s | %11s\n", "block", "SDG nodes", "dynamic fn/LoC",
                "disjoint fn/LoC", "replication");
    const auto dyn = compile_hierarchy(model, Method::Dynamic);
    const auto dis = compile_hierarchy(model, Method::DisjointSat);
    for (const Block* b : dyn.order()) {
        const auto& dcb = dyn.at(*b);
        if (!dcb.code) continue;
        const auto& scb = dis.at(*b);
        std::printf("%-18s | %9zu | %6zu / %5zu | %6zu / %6zu | %11zu\n",
                    b->type_name().c_str(), dcb.sdg->internal_nodes.size(),
                    dcb.code->functions.size(), dcb.code->line_count(),
                    scb.code->functions.size(), scb.code->line_count(),
                    dcb.clustering->replicated_nodes(*dcb.sdg));
    }
    std::printf("\ntotals: dynamic %zu functions / %zu LoC,  disjoint %zu functions / %zu LoC\n",
                dyn.total_functions(), dyn.total_lines(), dis.total_functions(),
                dis.total_lines());

    // 3. Emit deployable C++.
    const std::string path = "fuel_controller_gen.cpp";
    {
        std::ofstream f(path);
        f << emit_cpp(dyn);
    }
    std::printf("\n== complete generated C++ written to ./%s\n", path.c_str());

    // 4. Throttle-step scenario: idle -> tip-in at t=30 -> cruise.
    std::printf("\n== scenario: throttle step (modular code vs reference simulator)\n");
    InterpInstance inst(dyn, model);
    sim::Simulator reference(flatten(*model));
    std::printf("%6s %9s %11s %11s %11s\n", "t", "throttle", "fuel (gen)", "fuel (ref)",
                "o2 mode");
    double max_err = 0.0;
    for (int t = 0; t < 80; ++t) {
        const double throttle = t < 30 ? 12.0 : 55.0;
        const std::vector<double> in = {throttle, 1800.0, 0.4 + 0.1 * ((t / 7) % 2), 60.0};
        const auto gen = inst.step_instant(in);
        const auto ref = reference.step(in);
        max_err = std::max(max_err, std::abs(gen[0] - ref[0]));
        if (t % 10 == 0)
            std::printf("%6d %9.1f %11.5f %11.5f %11.0f\n", t, throttle, gen[0], ref[0],
                        gen[1]);
    }
    std::printf("\nmax |modular - reference| over 80 instants: %g\n", max_err);
    return max_err == 0.0 ? 0 : 1;
}
